"""Tests for the two-tier day-cycle driver (section 4's mobile scenario)."""

import pytest

from repro.core.acceptance import AlwaysAccept, IdenticalOutputs
from repro.core.protocol import TwoTierSystem
from repro.exceptions import ConfigurationError
from repro.workload.mobile_cycle import MobileCycleDriver
from repro.workload.profiles import uniform_update_profile
from repro.replication import SystemSpec


def make_system(num_mobile=2, db_size=40):
    return TwoTierSystem(
        SystemSpec(num_nodes=1 + num_mobile, db_size=db_size,
                   action_time=0.001, seed=0),
        num_base=1,
    )


def test_cycles_complete_and_tentative_work_happens():
    system = make_system()
    driver = MobileCycleDriver(
        system,
        uniform_update_profile(actions=2, db_size=40, commutative=True),
        tps=2.0,
        disconnect_time=5.0,
        acceptance=AlwaysAccept(),
    )
    driver.start(duration=30.0)
    system.run()
    assert driver.cycles_completed >= 2 * 5  # ~6 cycles x 2 mobiles
    assert system.metrics.tentative_committed > 0
    assert system.metrics.tentative_accepted > 0
    assert system.base_divergence() == 0


def test_commutative_day_cycles_never_reject():
    system = make_system()
    driver = MobileCycleDriver(
        system,
        uniform_update_profile(actions=2, db_size=40, commutative=True),
        tps=3.0,
        disconnect_time=4.0,
        acceptance=AlwaysAccept(),
    )
    driver.start(duration=40.0)
    system.run()
    assert system.metrics.tentative_rejected == 0
    assert system.metrics.tentative_accepted == system.metrics.tentative_committed


def test_strict_acceptance_rejects_under_contention():
    system = make_system(num_mobile=3, db_size=10)
    driver = MobileCycleDriver(
        system,
        uniform_update_profile(actions=2, db_size=10, commutative=True),
        tps=3.0,
        disconnect_time=5.0,
        acceptance=IdenticalOutputs(),
    )
    driver.start(duration=40.0)
    system.run()
    # with 3 mobiles hammering 10 objects, interleaved base commits change
    # increment outputs: strict acceptance must reject some
    assert system.metrics.tentative_rejected > 0
    # but the master tier never diverges regardless
    assert system.base_divergence() == 0


def test_all_replicas_converge_after_final_reconnect():
    system = make_system()
    driver = MobileCycleDriver(
        system,
        uniform_update_profile(actions=1, db_size=40, commutative=True),
        tps=1.0,
        disconnect_time=3.0,
        acceptance=AlwaysAccept(),
    )
    driver.start(duration=20.0)
    system.run()
    # the cycle ends with a reconnect + exchange, so everything drains
    assert system.divergence() == 0


def test_validation():
    system = make_system()
    profile = uniform_update_profile(actions=1, db_size=40)
    with pytest.raises(ConfigurationError):
        MobileCycleDriver(system, profile, tps=0, disconnect_time=1.0)
    with pytest.raises(ConfigurationError):
        MobileCycleDriver(system, profile, tps=1.0, disconnect_time=0)
    driver = MobileCycleDriver(system, profile, tps=1.0, disconnect_time=1.0)
    with pytest.raises(ConfigurationError):
        driver.start(duration=0)
