"""Tests for equations 14-19 (lazy group, mobile, lazy master)."""

import pytest

from repro.analytic import ModelParameters, eager, lazy_group, lazy_master
from repro.analytic.scaling import amplification, fit_exponent, sweep
from repro.exceptions import ConfigurationError


@pytest.fixture()
def p():
    return ModelParameters(db_size=10_000, nodes=4, tps=10, actions=5,
                           action_time=0.01)


@pytest.fixture()
def mobile_p():
    return ModelParameters(db_size=10_000, nodes=4, tps=1, actions=5,
                           action_time=0.01, disconnect_time=8.0)


class TestEquation14:
    def test_reconciliation_rate_equals_eager_wait_rate(self, p):
        """'the system-wide lazy-group reconciliation rate follows the
        transaction wait rate equation (Equation 10)'"""
        assert lazy_group.reconciliation_rate(p) == pytest.approx(
            eager.total_wait_rate(p)
        )

    def test_cubic_in_nodes(self, p):
        r = sweep(lazy_group.reconciliation_rate, p, "nodes", [1, 2, 4, 8])
        assert fit_exponent(r.xs, r.ys) == pytest.approx(3.0)

    def test_thousandfold_at_ten_nodes(self, p):
        assert amplification(
            lazy_group.reconciliation_rate, p.with_(nodes=1), "nodes", 10
        ) == pytest.approx(1000.0)


class TestEquations15To17:
    def test_outbound_updates(self, mobile_p):
        # Disconnect * TPS * Actions = 8 * 1 * 5 = 40
        assert lazy_group.outbound_updates(mobile_p) == pytest.approx(40.0)

    def test_inbound_updates(self, mobile_p):
        # (N-1) * 40 = 120
        assert lazy_group.inbound_updates(mobile_p) == pytest.approx(120.0)

    def test_collision_probability_paper_approximation(self, mobile_p):
        # N * (D*TPS*A)^2 / DB = 4 * 1600 / 10000
        assert lazy_group.collision_probability(mobile_p) == pytest.approx(0.64)

    def test_collision_probability_exact_nodes(self, mobile_p):
        exact = lazy_group.collision_probability(mobile_p, exact_nodes=True)
        approx = lazy_group.collision_probability(mobile_p)
        assert exact == pytest.approx(approx * 3 / 4)

    def test_collision_grows_with_disconnect_time_squared(self, mobile_p):
        p2 = mobile_p.with_(disconnect_time=16.0)
        assert lazy_group.collision_probability(p2) == pytest.approx(
            4 * lazy_group.collision_probability(mobile_p)
        )


class TestEquation18:
    def test_rate_formula(self, mobile_p):
        # Disconnect * (TPS*A*N)^2 / DB = 8 * (1*5*4)^2 / 10000 = 0.32
        assert lazy_group.mobile_reconciliation_rate(mobile_p) == pytest.approx(
            0.32
        )

    def test_quadratic_in_nodes(self, mobile_p):
        r = sweep(
            lazy_group.mobile_reconciliation_rate, mobile_p, "nodes",
            [2, 4, 8, 16],
        )
        assert fit_exponent(r.xs, r.ys) == pytest.approx(2.0)

    def test_quadratic_in_tps(self, mobile_p):
        assert amplification(
            lazy_group.mobile_reconciliation_rate, mobile_p, "tps", 3
        ) == pytest.approx(9.0)

    def test_requires_disconnect_time(self, p):
        with pytest.raises(ConfigurationError):
            lazy_group.mobile_reconciliation_rate(p)

    def test_consistency_with_collision_probability(self, mobile_p):
        expected = (
            lazy_group.collision_probability(mobile_p)
            * mobile_p.nodes
            / mobile_p.disconnect_time
        )
        assert lazy_group.mobile_reconciliation_rate(mobile_p) == pytest.approx(
            expected
        )


class TestEquation19:
    def test_formula(self, p):
        expected = (10 * 4) ** 2 * 0.01 * 5**5 / (4 * 10_000**2)
        assert lazy_master.deadlock_rate(p) == pytest.approx(expected)

    def test_quadratic_in_nodes(self, p):
        r = sweep(lazy_master.deadlock_rate, p, "nodes", [1, 2, 4, 8, 16])
        assert fit_exponent(r.xs, r.ys) == pytest.approx(2.0)

    def test_single_node_equals_equation_5(self, p):
        from repro.analytic import single_node

        q = p.with_(nodes=1)
        assert lazy_master.deadlock_rate(q) == pytest.approx(
            single_node.node_deadlock_rate(q)
        )

    def test_better_than_eager_for_many_nodes(self, p):
        """Lazy master (N^2) must beat eager group (N^3) as N grows."""
        for nodes in [2, 5, 10, 50]:
            q = p.with_(nodes=nodes)
            assert lazy_master.deadlock_rate(q) < eager.total_deadlock_rate(q)

    def test_wait_rate_quadratic(self, p):
        r = sweep(lazy_master.wait_rate, p, "nodes", [1, 2, 4, 8])
        assert fit_exponent(r.xs, r.ys) == pytest.approx(2.0)

    def test_replica_update_transactions_nearly_quadratic(self, p):
        # TPS*N*(N-1)
        assert lazy_master.replica_update_transactions(p) == pytest.approx(
            10 * 4 * 3
        )
