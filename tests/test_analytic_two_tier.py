"""Tests for the two-tier analytic derivations."""

import pytest

from repro.analytic import ModelParameters, lazy_group, lazy_master, two_tier


@pytest.fixture()
def p():
    return ModelParameters(db_size=10_000, nodes=4, tps=5, actions=4,
                           action_time=0.01, disconnect_time=4.0)


def test_base_deadlock_rate_is_equation_19(p):
    assert two_tier.base_deadlock_rate(p) == pytest.approx(
        lazy_master.deadlock_rate(p)
    )


def test_zero_reconciliation_when_all_commute(p):
    assert two_tier.reconciliation_rate(p, non_commuting_fraction=0.0) == 0.0


def test_reconciliation_scales_with_non_commuting_fraction(p):
    full = two_tier.reconciliation_rate(p, non_commuting_fraction=1.0)
    half = two_tier.reconciliation_rate(p, non_commuting_fraction=0.5)
    assert full == pytest.approx(lazy_group.mobile_reconciliation_rate(p))
    assert half == pytest.approx(full / 2)


def test_non_commuting_fraction_validated(p):
    with pytest.raises(ValueError):
        two_tier.reconciliation_rate(p, non_commuting_fraction=1.5)
    with pytest.raises(ValueError):
        two_tier.reconciliation_rate(p, non_commuting_fraction=-0.1)


def test_expected_retries_small_in_dilute_regime(p):
    retries = two_tier.expected_retries_per_base_txn(p)
    assert 0 <= retries < 0.01


def test_expected_retries_grow_with_load(p):
    low = two_tier.expected_retries_per_base_txn(p)
    high = two_tier.expected_retries_per_base_txn(p.with_(tps=50))
    assert high > low


def test_expected_retries_zero_load(p):
    assert two_tier.expected_retries_per_base_txn(p.with_(tps=0)) == 0.0


def test_system_delusion_is_identically_zero(p):
    assert two_tier.system_delusion(p) == 0.0
    assert two_tier.system_delusion(p.with_(nodes=100, tps=1000)) == 0.0
