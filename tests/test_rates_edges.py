"""Edge cases for RateSummary/summarize and Metrics strict mode."""

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics.counters import Metrics
from repro.metrics.rates import summarize


# --------------------------------------------------------------------- #
# summarize horizon edges
# --------------------------------------------------------------------- #


def test_zero_duration_rejected():
    with pytest.raises(ConfigurationError):
        summarize(Metrics(), 0.0)


def test_negative_duration_rejected():
    with pytest.raises(ConfigurationError):
        summarize(Metrics(), -1.0)


def test_zero_commits_zero_rates():
    rates = summarize(Metrics(), 10.0)
    assert rates.commit_rate == 0.0
    assert rates.deadlock_rate == 0.0
    assert rates.reconciliation_rate == 0.0
    assert rates.abort_rate == 0.0
    assert all(v == 0.0 for k, v in rates.as_dict().items()
               if k != "horizon")


def test_rates_divide_by_horizon():
    metrics = Metrics(commits=30, deadlocks=3)
    rates = summarize(metrics, 10.0)
    assert rates.commit_rate == 3.0
    assert rates.deadlock_rate == 0.3


# --------------------------------------------------------------------- #
# Metrics.bump strict mode
# --------------------------------------------------------------------- #


def test_bump_declared_counter():
    m = Metrics(strict=True)
    m.bump("commits")
    m.bump("commits", 2)
    assert m.commits == 3


def test_bump_known_extra_allowed_in_strict_mode():
    m = Metrics(strict=True)
    for name in Metrics.KNOWN_EXTRAS:
        m.bump(name)
    assert m.extra == {name: 1 for name in Metrics.KNOWN_EXTRAS}


def test_bump_typo_rejected_in_strict_mode():
    m = Metrics(strict=True)
    with pytest.raises(KeyError, match="comits"):
        m.bump("comits")
    assert m.extra == {}


def test_bump_adhoc_extra_allowed_by_default():
    m = Metrics()
    m.bump("my_experiment_counter", 5)
    assert m.extra["my_experiment_counter"] == 5
    assert m.as_dict()["my_experiment_counter"] == 5


def test_strict_flag_not_a_counter():
    m = Metrics(strict=True)
    assert "strict" not in m.as_dict()
    with pytest.raises(KeyError):
        m.bump("strict")


def test_merged_with_preserves_extras():
    a = Metrics(commits=1)
    a.bump("crashes")
    b = Metrics(commits=2)
    merged = a.merged_with(b)
    assert merged.commits == 3
    assert merged.extra["crashes"] == 1
