"""Partial replication end-to-end: sharded stores, routing, convergence.

Every strategy runs with a ``hash:k=3`` placement over genuinely sharded
stores (N > k) and must still pass the invariant oracle: replica sets
converge, counters close, no locks leak.  Plus the sharp edges: the
store-level ``divergence()`` helper refuses disjoint keyspaces instead of
reporting phantom agreement, and a replica-set member that misses an
update is flagged as divergence by the system-level comparison.
"""

import pytest

from repro.analytic import eager, lazy_group, markov_strategies, partial
from repro.analytic.parameters import ModelParameters
from repro.exceptions import ConfigurationError
from repro.faults.oracle import evaluate as evaluate_oracle
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.experiment import STRATEGIES
from repro.placement import HashShardPlacement, Placement
from repro.replication import LazyGroupSystem, SystemSpec
from repro.storage.store import ObjectStore, divergence as store_divergence
from repro.storage.versioning import Timestamp

from tests.determinism_helpers import (
    fingerprint_partial,
    load_partial_golden,
    partial_case_names,
)

_PARAMS = ModelParameters(
    db_size=60, nodes=5, tps=4.0, actions=3, action_time=0.005,
    message_delay=0.002,
)


def _partial_config(strategy: str, **overrides) -> ExperimentConfig:
    defaults = dict(
        strategy=strategy,
        params=_PARAMS,
        duration=10.0,
        seed=7,
        placement=Placement.from_spec("hash:k=3"),
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


# --------------------------------------------------------------------- #
# sharded stores
# --------------------------------------------------------------------- #


def test_each_node_holds_only_its_shard():
    spec = SystemSpec(
        num_nodes=5, db_size=60,
        placement=HashShardPlacement(replication_factor=3),
    )
    system = LazyGroupSystem(spec)
    total = 0
    for node in system.nodes:
        resident = set(node.store.oids())
        expected = set(system.placement.objects_at(node.node_id))
        assert resident == expected  # logical residency == the placement
        assert len(resident) < 60  # strictly less than db_size
        # lazy default: nothing is materialised until a transaction touches it
        assert node.store.materialized == 0
        total += len(resident)
    assert total == 3 * 60  # k copies of every object, nothing else
    for oid in range(60):
        for node_id in range(5):
            held = oid in system.nodes[node_id].store
            assert held == system.placement.is_replica(oid, node_id)


def test_eager_stores_flag_restores_upfront_materialisation():
    spec = SystemSpec(
        num_nodes=5, db_size=60,
        placement=HashShardPlacement(replication_factor=3),
        eager_stores=True,
    )
    system = LazyGroupSystem(spec)
    total = sum(node.store.materialized for node in system.nodes)
    assert total == 3 * 60  # every resident record allocated up front
    for node in system.nodes:
        assert node.store.materialized == len(set(node.store.oids()))


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_resident_objects_scale_with_k_over_n(strategy):
    result = run_experiment(_partial_config(strategy))
    resident = result.extra["resident_objects"]
    if strategy == "two-tier":
        # the placement spans the base tier; with the default single base
        # node the factor clamps to 1 and mobiles legitimately hold all
        assert resident["replication_factor"] == 1
        return
    assert resident["replication_factor"] == 3
    assert resident["total"] == 3 * 60
    assert resident["max"] < 60
    assert resident["mean"] == pytest.approx(3 * 60 / 5)


# --------------------------------------------------------------------- #
# convergence and the oracle, per strategy
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_partial_run_converges_and_passes_oracle(strategy):
    result = run_experiment(_partial_config(strategy))
    assert result.metrics.commits > 0
    assert result.divergence == 0
    assert result.extra["oracle_ok"] is True


# --------------------------------------------------------------------- #
# divergence semantics on shards
# --------------------------------------------------------------------- #


def test_store_divergence_rejects_disjoint_keyspaces():
    a = ObjectStore(node_id=0, db_size=10, oids=[0, 1, 2])
    b = ObjectStore(node_id=1, db_size=10, oids=[3, 4, 5])
    with pytest.raises(ConfigurationError, match="identical keyspaces"):
        store_divergence([a, b])


def test_store_divergence_still_compares_identical_keyspaces():
    a = ObjectStore(node_id=0, db_size=10, oids=[0, 1, 2])
    b = ObjectStore(node_id=1, db_size=10, oids=[0, 1, 2])
    assert store_divergence([a, b]) == 0
    b.write(1, 99, Timestamp(1, 1))
    assert store_divergence([a, b]) == 1


def test_dropped_update_to_replica_set_is_flagged():
    """A 3-replica object whose update lands at only 2 replicas diverges."""
    spec = SystemSpec(
        num_nodes=5, db_size=60,
        placement=HashShardPlacement(replication_factor=3),
    )
    system = LazyGroupSystem(spec)
    oid = 17
    replicas = system.placement.replicas(oid)
    assert len(replicas) == 3
    # the update reaches the first two replicas; the third never sees it
    for node_id in replicas[:2]:
        store = system.nodes[node_id].store
        store.write(oid, 123, Timestamp(1, node_id))
    assert system.divergence() == 1
    verdict = evaluate_oracle(system)
    assert not verdict.ok
    assert any("diverged" in failure for failure in verdict.failures)
    # non-replicas holding nothing is not divergence: healing the straggler
    # clears the flag even though the other 2 nodes never store the object
    straggler = replicas[2]
    system.nodes[straggler].store.write(oid, 123, Timestamp(1, straggler))
    assert system.divergence() == 0
    assert evaluate_oracle(system).ok


# --------------------------------------------------------------------- #
# determinism golden for partial runs
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def partial_golden():
    data = load_partial_golden()
    assert data, "tests/data/partial_golden.json is missing or empty"
    return data


@pytest.mark.parametrize("case", partial_case_names())
def test_partial_run_is_reproducible_and_matches_golden(case, partial_golden):
    first = fingerprint_partial(case)
    second = fingerprint_partial(case)
    assert first == second, f"{case}: same-process repeat diverged"
    assert case in partial_golden, (
        f"{case}: no committed golden (run tests.determinism_helpers "
        "--write-partial)"
    )
    assert first == partial_golden[case]


def test_partial_golden_covers_every_case(partial_golden):
    assert sorted(partial_golden) == sorted(partial_case_names())


# --------------------------------------------------------------------- #
# the k = N limit: partial predictions reduce to full replication
# --------------------------------------------------------------------- #


_LIMIT_PARAMS = ModelParameters(
    db_size=500, nodes=6, tps=5.0, actions=4, action_time=0.01,
)


class TestFullReplicationLimit:
    """``hash:k=N`` must be indistinguishable from full replication."""

    def test_structure_reduces_to_eager_equations(self):
        p, n = _LIMIT_PARAMS, _LIMIT_PARAMS.nodes
        assert partial.transaction_size(p, n) == eager.transaction_size(p)
        assert partial.transaction_duration(p, n) == (
            eager.transaction_duration(p)
        )
        assert partial.total_transactions(p, n) == pytest.approx(
            eager.total_transactions(p), rel=1e-12)
        assert partial.action_rate(p, n) == pytest.approx(
            eager.action_rate(p), rel=1e-12)

    def test_danger_rates_reduce_to_eq_10_12_14(self):
        p, n = _LIMIT_PARAMS, _LIMIT_PARAMS.nodes
        assert partial.wait_rate(p, n) == pytest.approx(
            eager.total_wait_rate(p), rel=1e-12)
        assert partial.deadlock_rate(p, n) == pytest.approx(
            eager.total_deadlock_rate(p), rel=1e-12)
        assert partial.reconciliation_rate(p, n) == pytest.approx(
            lazy_group.reconciliation_rate(p), rel=1e-12
        )
        assert partial.softening(p, n) == 1.0

    def test_oversized_k_clamps_to_full_replication(self):
        p, n = _LIMIT_PARAMS, _LIMIT_PARAMS.nodes
        assert partial.deadlock_rate(p, n + 10) == pytest.approx(
            eager.total_deadlock_rate(p), rel=1e-12
        )
        assert partial.resident_objects(p, n + 10) == float(p.db_size)

    @pytest.mark.parametrize("strategy", ("eager-group", "eager-master",
                                          "lazy-group"))
    def test_reference_rate_reduces_at_k_equals_n(self, strategy):
        p, n = _LIMIT_PARAMS, _LIMIT_PARAMS.nodes
        full = {
            "eager-group": eager.total_deadlock_rate(p),
            "eager-master": eager.total_deadlock_rate(p),
            "lazy-group": lazy_group.reconciliation_rate(p),
        }[strategy]
        assert partial.reference_rate(strategy, p, n) == pytest.approx(
            full, rel=1e-12)


class TestMarkovAgreesWithPartialAtKEqualsN:
    """The Markov chains must honour the same k = N reduction."""

    @pytest.mark.parametrize("strategy", markov_strategies.MARKOV_STRATEGIES)
    def test_k_equals_n_matches_default_full_replication(self, strategy):
        p, n = _LIMIT_PARAMS, _LIMIT_PARAMS.nodes
        explicit = markov_strategies.reference_rate(strategy, p, k=n)
        implicit = markov_strategies.reference_rate(strategy, p, k=None)
        assert explicit == implicit

    @pytest.mark.parametrize("strategy", ("eager-group", "lazy-group"))
    def test_low_contention_markov_matches_partial_model(self, strategy):
        # deep in the low-contention regime the congestion fixed point is
        # ~1 and the chain's rate converges to the partial closed form
        p = _LIMIT_PARAMS.with_(db_size=200_000)
        n = p.nodes
        chain_rate = markov_strategies.reference_rate(strategy, p, k=n)
        closed = partial.reference_rate(strategy, p, n)
        assert chain_rate == pytest.approx(closed, rel=1e-3)

    @pytest.mark.parametrize("k", (1, 2, 4))
    def test_partial_softening_tracks_k_over_n(self, k):
        # at fixed nodes the chain inherits the closed forms' k-scaling
        p = _LIMIT_PARAMS.with_(db_size=200_000)
        chain = markov_strategies.reference_rate("lazy-group", p, k=k)
        closed = partial.reference_rate("lazy-group", p, k)
        assert chain == pytest.approx(closed, rel=1e-3)
