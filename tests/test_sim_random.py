"""Tests for seeded random substreams."""

from repro.sim.random_source import RandomSource, derive_seed


def test_derive_seed_is_stable():
    # pinned value: must never change across runs or machines
    assert derive_seed(0, "x") == derive_seed(0, "x")
    assert derive_seed(0, "x") != derive_seed(0, "y")
    assert derive_seed(0, "x") != derive_seed(1, "x")


def test_streams_are_reproducible():
    a = RandomSource(seed=7).stream("s")
    b = RandomSource(seed=7).stream("s")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_named_streams_are_independent():
    source = RandomSource(seed=7)
    s1 = [source.stream("one").random() for _ in range(5)]
    s2 = [source.stream("two").random() for _ in range(5)]
    assert s1 != s2


def test_stream_is_cached_not_reseeded():
    source = RandomSource(seed=7)
    first = source.stream("s").random()
    second = source.stream("s").random()
    assert first != second  # continuing the stream, not restarting it


def test_adding_stream_does_not_perturb_existing():
    source_a = RandomSource(seed=3)
    sa = source_a.stream("main")
    first = [sa.random() for _ in range(3)]

    source_b = RandomSource(seed=3)
    source_b.stream("unrelated").random()  # extra consumer
    sb = source_b.stream("main")
    second = [sb.random() for _ in range(3)]
    assert first == second


def test_spawn_creates_independent_child():
    parent = RandomSource(seed=5)
    child = parent.spawn("child")
    assert child.seed != parent.seed
    p = [parent.stream("s").random() for _ in range(3)]
    c = [child.stream("s").random() for _ in range(3)]
    assert p != c


def test_convenience_draws():
    source = RandomSource(seed=1)
    assert source.expovariate(10.0) > 0
    assert 1 <= source.uniform_int(1, 6) <= 6
    sample = source.sample([1, 2, 3, 4, 5], 3)
    assert len(sample) == 3
    assert len(set(sample)) == 3


def test_different_seeds_differ():
    a = [RandomSource(seed=1).stream("s").random() for _ in range(3)]
    b = [RandomSource(seed=2).stream("s").random() for _ in range(3)]
    assert a != b
