"""Tests for the live NDJSON gateway (``repro serve``).

Every test spins a real :class:`ServiceGateway` on a unix socket inside
``tmp_path`` and talks the wire protocol to it — the same bytes a remote
client would send.  The satellite concern rides here too: acceptance
diagnostics must round-trip to the originating client through the gateway
path exactly as they do through the simulator's reconnect path.
"""

import asyncio
import json

import pytest

from repro.core import NonNegativeOutputs, TwoTierSystem
from repro.core.tentative import TentativeStatus
from repro.replication import SystemSpec
from repro.service import GatewayConfig, ServiceGateway
from repro.txn.ops import IncrementOp


class Client:
    """A minimal NDJSON client: one connection, frame in / frame out."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, path):
        reader, writer = await asyncio.open_unix_connection(path)
        client = cls(reader, writer)
        client.welcome = await client.recv()
        return client

    async def send(self, **frame):
        self.writer.write(json.dumps(frame).encode() + b"\n")
        await self.writer.drain()

    async def recv(self):
        line = await self.reader.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    async def txn(self, ops, acceptance=None, request_id=None, label=""):
        frame = {"type": "txn", "ops": ops, "label": label}
        if acceptance is not None:
            frame["acceptance"] = acceptance
        if request_id is not None:
            frame["id"] = request_id
        await self.send(**frame)
        return await self.recv()

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except ConnectionError:
            pass


def with_gateway(config=None):
    """Decorator-free harness: run ``scenario(gateway, path)`` to completion."""
    def runner(scenario, tmp_path):
        async def main():
            path = str(tmp_path / "gw.sock")
            gateway = ServiceGateway(config or GatewayConfig(
                db_size=50, initial_value=100
            ))
            await gateway.start(unix_path=path)
            server = asyncio.create_task(gateway.run())
            try:
                return await scenario(gateway, path)
            finally:
                gateway.request_stop()
                await server

        return asyncio.run(main())
    return runner


class TestTransactions:
    def test_accepted_increment_commits_at_base(self, tmp_path):
        async def scenario(gateway, path):
            client = await Client.connect(path)
            reply = await client.txn([["inc", 0, 7]], request_id=1)
            await client.close()
            return gateway, reply

        gateway, reply = with_gateway()(scenario, tmp_path)
        assert reply["type"] == "result"
        assert reply["id"] == 1
        assert reply["status"] == "accepted"
        assert reply["latency_ms"] >= 0
        assert gateway.system.nodes[0].store.value(0) == 107

    def test_notice_travelled_base_to_mobile(self, tmp_path):
        """Satellite: the reply's acknowledgement comes from the real
        tentative-notice message, not a shortcut — ``noticed`` proves the
        base → mobile delivery happened before the reply was written."""
        async def scenario(gateway, path):
            client = await Client.connect(path)
            reply = await client.txn([["inc", 3, 1]])
            await client.close()
            return reply

        reply = with_gateway()(scenario, tmp_path)
        assert reply["noticed"] is True

    def test_rejection_diagnostic_round_trips_to_the_client(self, tmp_path):
        """Satellite: acceptance.py diagnostics reach the originating
        mobile through the gateway path."""
        async def scenario(gateway, path):
            client = await Client.connect(path)
            # 100 - 150 goes negative: NonNegativeOutputs must reject and
            # explain itself all the way back over the socket
            reply = await client.txn([["inc", 2, -150]],
                                     acceptance="non-negative")
            await client.close()
            return gateway, reply

        gateway, reply = with_gateway()(scenario, tmp_path)
        assert reply["status"] == "rejected"
        assert reply["noticed"] is True
        assert "diagnostic" in reply and reply["diagnostic"]
        # the base state is untouched by the rejected transaction
        assert gateway.system.nodes[0].store.value(2) == 100
        assert gateway.rejected == 1

    def test_scope_violation_is_an_error_reply(self, tmp_path):
        async def scenario(gateway, path):
            client = await Client.connect(path)
            reply = await client.txn([["inc", 9999, 1]], request_id=5)
            await client.close()
            return reply

        reply = with_gateway()(scenario, tmp_path)
        assert reply["type"] == "error"
        assert reply["id"] == 5

    def test_malformed_frames_get_protocol_errors(self, tmp_path):
        async def scenario(gateway, path):
            client = await Client.connect(path)
            replies = []
            await client.send(type="txn", ops=[["frob", 1, 2]])
            replies.append(await client.recv())
            await client.send(type="txn", ops=[["inc", 1]])  # bad arity
            replies.append(await client.recv())
            await client.send(type="nonsense")
            replies.append(await client.recv())
            self_line = b"this is not json\n"
            client.writer.write(self_line)
            await client.writer.drain()
            replies.append(await client.recv())
            await client.close()
            return replies

        replies = with_gateway()(scenario, tmp_path)
        assert all(reply["type"] == "error" for reply in replies)

    def test_ping_and_stats(self, tmp_path):
        async def scenario(gateway, path):
            client = await Client.connect(path)
            await client.txn([["inc", 0, 1]])
            await client.send(type="ping", id="p1")
            pong = await client.recv()
            await client.send(type="stats")
            stats = await client.recv()
            await client.close()
            return pong, stats

        pong, stats = with_gateway()(scenario, tmp_path)
        assert pong == {"type": "pong", "id": "p1"}
        assert stats["type"] == "stats"
        assert stats["served"] == 1
        assert stats["accepted"] == 1
        assert stats["latency_ms"]["count"] == 1

    def test_welcome_frame_describes_the_service(self, tmp_path):
        async def scenario(gateway, path):
            client = await Client.connect(path)
            await client.close()
            return client.welcome

        welcome = with_gateway()(scenario, tmp_path)
        assert welcome["type"] == "welcome"
        assert welcome["protocol"] == 1
        assert welcome["db_size"] == 50
        assert welcome["mobile"] in (1, 2, 3, 4)


class TestConcurrency:
    def test_many_connections_sum_correctly(self, tmp_path):
        """Concurrent clients on shared objects: the drained store sum
        must equal the initial mass plus every accepted delta."""
        async def scenario(gateway, path):
            async def one_client(k):
                client = await Client.connect(path)
                total = 0
                for i in range(10):
                    reply = await client.txn([["inc", (k + i) % 50, 1]])
                    if reply.get("status") == "accepted":
                        total += 1
                await client.close()
                return total

            totals = await asyncio.gather(*(one_client(k) for k in range(8)))
            drain_client = await Client.connect(path)
            await drain_client.send(type="drain")
            drained = await drain_client.recv()
            await drain_client.close()
            return sum(totals), drained

        accepted, drained = with_gateway()(scenario, tmp_path)
        assert accepted == 80
        assert drained["type"] == "drained"
        assert drained["store_sum"] == 50 * 100 + accepted
        assert drained["base_divergence"] == 0
        assert drained["wal_quiescent"] is True
        assert drained["inflight"] == 0

    def test_backpressure_cap_of_one_still_serves_all(self, tmp_path):
        config = GatewayConfig(db_size=50, initial_value=0, max_inflight=1)

        async def scenario(gateway, path):
            async def one_client():
                client = await Client.connect(path)
                statuses = [
                    (await client.txn([["inc", 0, 1]]))["status"]
                    for _ in range(5)
                ]
                await client.close()
                return statuses

            results = await asyncio.gather(*(one_client() for _ in range(4)))
            return gateway, results

        gateway, results = with_gateway(config)(scenario, tmp_path)
        assert all(s == "accepted" for batch in results for s in batch)
        assert gateway.system.nodes[0].store.value(0) == 20

    def test_drain_refuses_new_transactions(self, tmp_path):
        async def scenario(gateway, path):
            client = await Client.connect(path)
            await client.send(type="drain")
            await client.recv()
            reply = await client.txn([["inc", 0, 1]])
            await client.close()
            return reply

        reply = with_gateway()(scenario, tmp_path)
        assert reply["type"] == "error"
        assert "draining" in reply["why"]


class TestSimPathParity:
    """The same diagnostics round-trip through the simulator's reconnect
    exchange — the gateway is a second door into one mechanism."""

    def test_rejection_diagnostic_round_trips_in_sim_mode(self):
        system = TwoTierSystem(
            SystemSpec(num_nodes=2, db_size=20, initial_value=100),
            num_base=1,
        )
        mobile = system.mobile(1)
        system.disconnect_mobile(1)
        mobile.submit_tentative([IncrementOp(0, -150)], NonNegativeOutputs())
        system.run()
        system.reconnect_mobile(1)
        system.run()
        assert len(mobile.rejected_transactions) == 1
        record = mobile.rejected_transactions[0]
        assert record.diagnostic
        notice = mobile.pop_notice(record.seq)
        assert notice is not None
        assert notice[1] is TentativeStatus.REJECTED
        assert notice[2] == record.diagnostic

    def test_pop_notice_consumes_exactly_one(self):
        system = TwoTierSystem(
            SystemSpec(num_nodes=2, db_size=20, initial_value=100),
            num_base=1,
        )
        mobile = system.mobile(1)
        mobile.record_notice(7, TentativeStatus.ACCEPTED, "")
        mobile.record_notice(8, TentativeStatus.REJECTED, "no")
        assert mobile.pop_notice(8) == (8, TentativeStatus.REJECTED, "no")
        assert mobile.pop_notice(8) is None
        assert mobile.pop_notice(7) == (7, TentativeStatus.ACCEPTED, "")
        assert mobile.notices == []


class TestNoticeWait:
    """Regression: the reply's notice wait must survive delivery jitter.

    The old code slept exactly one ``message_delay`` and popped once; a
    notice landing any later was mis-reported as ``noticed: false`` *and*
    left behind in ``mobile.notices`` forever.  The fix polls against
    ``notice_timeout`` and evicts late arrivals of abandoned waits.
    """

    @staticmethod
    def _drive(gateway, spawn):
        """Spawn engine processes and run the wall-clock engine dry."""
        async def main():
            procs = spawn()
            futures = [gateway.engine.wait_process(p) for p in procs]
            await gateway.engine.run_async()
            return [future.result() for future in futures]

        return asyncio.run(main())

    def test_notice_later_than_one_delay_is_still_noticed(self):
        gateway = ServiceGateway(GatewayConfig(
            db_size=50, message_delay=0.005, notice_timeout=0.5
        ))
        mobile_id = gateway._mobile_ids[0]
        mobile = gateway.system.mobiles[mobile_id]

        def late_notice():
            # 6x the nominal delay: the single-sleep code missed this
            yield gateway.engine.timeout(0.03)
            mobile.record_notice(7, TentativeStatus.ACCEPTED, "")

        def spawn():
            gateway.engine.process(late_notice(), name="late-notice")
            return [gateway.engine.process(
                gateway._await_notice(mobile_id, mobile, 7), name="wait"
            )]

        [notice] = self._drive(gateway, spawn)
        assert notice == (7, TentativeStatus.ACCEPTED, "")
        assert mobile.notices == []
        assert gateway._stale_notices.get(mobile_id, {}) == {}

    def test_abandoned_notice_is_evicted_when_it_arrives_late(self):
        gateway = ServiceGateway(GatewayConfig(
            db_size=50, message_delay=0.002, notice_timeout=0.02
        ))
        mobile_id = gateway._mobile_ids[0]
        mobile = gateway.system.mobiles[mobile_id]

        def spawn_timeout():
            return [gateway.engine.process(
                gateway._await_notice(mobile_id, mobile, 9), name="wait-9"
            )]

        [notice] = self._drive(gateway, spawn_timeout)
        assert notice is None  # gave up at the deadline
        assert 9 in gateway._stale_notices[mobile_id]

        # the abandoned notice finally lands — plus a fresh one that a
        # later transaction is actively waiting for
        mobile.record_notice(9, TentativeStatus.ACCEPTED, "")
        mobile.record_notice(10, TentativeStatus.REJECTED, "no")

        def spawn_fresh():
            return [gateway.engine.process(
                gateway._await_notice(mobile_id, mobile, 10), name="wait-10"
            )]

        [notice] = self._drive(gateway, spawn_fresh)
        assert notice == (10, TentativeStatus.REJECTED, "no")
        # the stale seq-9 arrival was swept, not leaked
        assert mobile.notices == []
        assert 9 not in gateway._stale_notices[mobile_id]

    def test_noticed_true_end_to_end_with_nonzero_delay(self, tmp_path):
        config = GatewayConfig(
            db_size=50, initial_value=100, message_delay=0.01
        )

        async def scenario(gateway, path):
            client = await Client.connect(path)
            reply = await client.txn([["inc", 1, 2]])
            await client.close()
            return gateway, reply

        gateway, reply = with_gateway(config)(scenario, tmp_path)
        assert reply["status"] == "accepted"
        assert reply["noticed"] is True
        # nothing left behind on the mobile's notice list
        assert all(
            mobile.notices == []
            for mobile in gateway.system.mobiles.values()
        )


class TestConfigValidation:
    def test_rejects_zero_mobiles(self):
        with pytest.raises(ValueError):
            ServiceGateway(GatewayConfig(mobiles=0))

    def test_rejects_nonpositive_inflight_cap(self):
        with pytest.raises(ValueError):
            ServiceGateway(GatewayConfig(max_inflight=0))
