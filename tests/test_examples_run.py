"""Smoke tests: every example script must run clean.

Examples are documentation; a broken one is a broken promise.  Each runs in
a subprocess exactly as a user would invoke it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "checkbook_demo.py",
    "sales_campaign.py",
    "scalability_report.py",
    "anomaly_hunt.py",
    "notes_gossip.py",
    "tpcb_bank.py",
])
def test_example_runs_clean(script):
    result = run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # produced real output


def test_quickstart_tells_the_whole_story():
    result = run_example("quickstart.py")
    out = result.stdout
    assert "1000" in out  # the thousand-fold amplification
    assert "BOUNCED" in out  # the rejected check
    assert "rejected:               0" in out  # commutative case


def test_scalability_report_shows_growth_orders():
    result = run_example("scalability_report.py")
    out = result.stdout
    assert "N^3.0" in out
    assert "N^2.0" in out
    assert "N^1.0" in out
    assert "UNSTABLE" in out  # the validity-region table


def test_anomaly_hunt_finds_the_cycle():
    result = run_example("anomaly_hunt.py")
    out = result.stdout
    assert out.count("serializable ✓") == 3
    assert "NOT serializable ✗" in out


def test_tpcb_bank_breaks_only_under_timestamps():
    result = run_example("tpcb_bank.py")
    out = result.stdout
    assert "branch == sum(tellers) at every branch: False" in out
    assert out.count("branch == sum(tellers) at every branch: True") == 2
