"""Tests for equations 1-5 (single-node waits and deadlocks)."""

import pytest

from repro.analytic import ModelParameters, single_node
from repro.exceptions import ConfigurationError


@pytest.fixture()
def p():
    return ModelParameters(db_size=1000, nodes=1, tps=10, actions=4,
                           action_time=0.01)


class TestParameters:
    def test_equation_1_concurrent_transactions(self, p):
        # Transactions = TPS x Actions x Action_Time = 10 * 4 * 0.01 = 0.4
        assert p.transactions == pytest.approx(0.4)
        assert single_node.concurrent_transactions(p) == pytest.approx(0.4)

    def test_transaction_duration(self, p):
        assert p.transaction_duration == pytest.approx(0.04)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ModelParameters(db_size=0)
        with pytest.raises(ConfigurationError):
            ModelParameters(nodes=0)
        with pytest.raises(ConfigurationError):
            ModelParameters(actions=0)
        with pytest.raises(ConfigurationError):
            ModelParameters(tps=-1)
        with pytest.raises(ConfigurationError):
            ModelParameters(action_time=-0.1)
        with pytest.raises(ConfigurationError):
            ModelParameters(message_delay=-1)

    def test_with_replaces_fields(self, p):
        q = p.with_(nodes=5, tps=20)
        assert q.nodes == 5 and q.tps == 20
        assert q.db_size == p.db_size
        assert p.nodes == 1  # original untouched

    def test_scaled_db(self, p):
        q = p.with_(nodes=10).scaled_db()
        assert q.db_size == 10_000

    def test_describe_mentions_values(self, p):
        text = p.describe()
        assert "DB_Size=1000" in text and "TPS=10" in text


class TestEquation2:
    def test_wait_probability_formula(self, p):
        # PW = Transactions * Actions^2 / (2 * DB) = 0.4*16/2000 = 0.0032
        assert single_node.wait_probability(p) == pytest.approx(0.0032)

    def test_wait_probability_scales_linearly_with_tps(self, p):
        assert single_node.wait_probability(p.with_(tps=20)) == pytest.approx(
            2 * single_node.wait_probability(p)
        )

    def test_wait_probability_inverse_in_db_size(self, p):
        assert single_node.wait_probability(p.with_(db_size=2000)) == (
            pytest.approx(single_node.wait_probability(p) / 2)
        )


class TestEquation3:
    def test_deadlock_probability_formula(self, p):
        # PD = TPS * AT * A^5 / (4 DB^2) = 10*0.01*1024/(4e6)
        expected = 10 * 0.01 * 4**5 / (4 * 1000**2)
        assert single_node.deadlock_probability(p) == pytest.approx(expected)

    def test_pd_equals_pw_squared_over_transactions(self, p):
        pw = single_node.wait_probability(p)
        pd = single_node.deadlock_probability(p)
        assert pd == pytest.approx(pw**2 / p.transactions)


class TestEquations4And5:
    def test_transaction_deadlock_rate(self, p):
        # eq 4 = PD / duration
        expected = single_node.deadlock_probability(p) / p.transaction_duration
        assert single_node.transaction_deadlock_rate(p) == pytest.approx(expected)

    def test_node_deadlock_rate(self, p):
        # eq 5 = eq 4 x Transactions
        expected = (
            single_node.transaction_deadlock_rate(p) * p.transactions
        )
        assert single_node.node_deadlock_rate(p) == pytest.approx(expected)

    def test_fifth_power_in_actions(self, p):
        r1 = single_node.node_deadlock_rate(p)
        r2 = single_node.node_deadlock_rate(p.with_(actions=8))
        assert r2 / r1 == pytest.approx(2**5)

    def test_quadratic_in_tps(self, p):
        r1 = single_node.node_deadlock_rate(p)
        r2 = single_node.node_deadlock_rate(p.with_(tps=30))
        assert r2 / r1 == pytest.approx(9.0)

    def test_node_wait_rate(self, p):
        assert single_node.node_wait_rate(p) == pytest.approx(
            single_node.wait_probability(p) * p.tps
        )
