"""System-level property-based tests (hypothesis).

Randomized workloads over randomized topologies, checking the invariants the
paper's argument rests on:

* serializable strategies (eager, lazy-master) conserve increments exactly;
* lazy-master and lazy-group (timestamp rule) always converge after drain;
* the two-tier base tier never diverges, whatever the mobiles do;
* deadlock handling never leaks locks or undo records.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import AlwaysAccept, NonNegativeOutputs, TwoTierSystem
from repro.replication.eager_group import EagerGroupSystem
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.lazy_master import LazyMasterSystem
from repro.txn.ops import IncrementOp, WriteOp
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import uniform_update_profile
from repro.replication import SystemSpec

# simulation-heavy properties: keep example counts modest
SIM_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

topology = st.tuples(
    st.integers(2, 4),    # nodes
    st.integers(5, 30),   # db size
    st.integers(0, 2**16),  # seed
)


@SIM_SETTINGS
@given(topology, st.integers(1, 12))
def test_eager_group_conserves_increments(topo, txns):
    nodes, db, seed = topo
    system = EagerGroupSystem(
        SystemSpec(num_nodes=nodes, db_size=db, action_time=0.001, seed=seed,
                   retry_deadlocks=True),
    )
    processes = []
    rng_oid = seed
    for i in range(txns):
        origin = i % nodes
        oid = (seed + i * 7) % db
        processes.append(system.submit(origin, [IncrementOp(oid, 1)]))
    system.run()
    committed = sum(1 for p in processes if p.value.state.value == "committed")
    total = sum(system.nodes[0].store.snapshot().values())
    assert total == committed
    assert system.converged()


@SIM_SETTINGS
@given(topology, st.integers(1, 10))
def test_lazy_master_conserves_and_converges(topo, tps):
    nodes, db, seed = topo
    system = LazyMasterSystem(
        SystemSpec(num_nodes=nodes, db_size=db, action_time=0.001, seed=seed,
                   retry_deadlocks=True),
    )
    workload = WorkloadGenerator(
        system,
        uniform_update_profile(actions=min(2, db), db_size=db,
                               commutative=True),
        tps=float(tps),
    )
    workload.start(duration=10.0)
    system.run()
    assert system.converged()
    # increments drawn from {1,2,5,-1,-2}: conservation means node sums match
    # across replicas (already implied by convergence) and no undo leaked
    for node in system.nodes:
        node.tm.assert_quiescent()


@SIM_SETTINGS
@given(topology)
def test_lazy_group_timestamp_rule_always_converges(topo):
    nodes, db, seed = topo
    system = LazyGroupSystem(
        SystemSpec(num_nodes=nodes, db_size=db, action_time=0.001,
                   message_delay=0.5, seed=seed),
    )
    workload = WorkloadGenerator(
        system, uniform_update_profile(actions=min(2, db), db_size=db),
        tps=3.0,
    )
    workload.start(duration=10.0)
    system.run()
    assert system.converged()
    for node in system.nodes:
        node.tm.assert_quiescent()


@SIM_SETTINGS
@given(
    st.integers(1, 3),   # base nodes
    st.integers(1, 3),   # mobiles
    st.integers(5, 20),  # db
    st.integers(0, 2**16),
    st.lists(st.integers(-60, 60).filter(lambda d: d != 0), min_size=1,
             max_size=10),
)
def test_two_tier_base_never_diverges(num_base, num_mobile, db, seed, deltas):
    system = TwoTierSystem(
        SystemSpec(num_nodes=num_base + num_mobile, db_size=db,
                   action_time=0.001, seed=seed, initial_value=100),
        num_base=num_base,
    )
    mobile_ids = list(system.mobiles)
    for mid in mobile_ids:
        system.disconnect_mobile(mid)
    for i, delta in enumerate(deltas):
        mobile = system.mobiles[mobile_ids[i % len(mobile_ids)]]
        mobile.submit_tentative(
            [IncrementOp((seed + i) % db, delta)], NonNegativeOutputs()
        )
    system.run()
    for mid in mobile_ids:
        system.reconnect_mobile(mid)
    system.run()
    assert system.base_divergence() == 0
    assert system.divergence() == 0  # after full drain, mobiles match too
    accepted = system.metrics.tentative_accepted
    rejected = system.metrics.tentative_rejected
    assert accepted + rejected == len(deltas)
    # no base value may be negative: the acceptance criterion guarded them
    assert all(v >= 0 for v in system.nodes[0].store.snapshot().values())


@SIM_SETTINGS
@given(topology)
def test_deterministic_replay(topo):
    """Identical seeds must give bit-identical metrics and state."""
    nodes, db, seed = topo

    def run():
        system = LazyGroupSystem(
            SystemSpec(num_nodes=nodes, db_size=db, action_time=0.002,
                       message_delay=0.3, seed=seed),
        )
        workload = WorkloadGenerator(
            system, uniform_update_profile(actions=min(2, db), db_size=db),
            tps=4.0,
        )
        workload.start(duration=8.0)
        system.run()
        return system.metrics.as_dict(), system.snapshot()

    assert run() == run()


@SIM_SETTINGS
@given(st.integers(2, 4), st.integers(0, 2**16))
def test_opposite_lock_orders_always_resolve(nodes, seed):
    """Adversarial deadlock workload: every transaction pair takes opposite
    lock orders; the system must always terminate with consistent state."""
    system = EagerGroupSystem(
        SystemSpec(num_nodes=nodes, db_size=4, action_time=0.002, seed=seed),
    )
    for origin in range(nodes):
        system.submit(origin, [WriteOp(0, origin), WriteOp(1, origin)])
        system.submit(origin, [WriteOp(1, origin), WriteOp(0, origin)])
    system.run()
    assert system.metrics.commits + system.metrics.aborts == 2 * nodes
    assert system.converged()
    for node in system.nodes:
        node.tm.assert_quiescent()
