"""Tests for the travelling-salesman scenario (section 7 acceptance
criteria: price, stock, aisle seats)."""

import pytest

from repro.workload.sales import SalesScenario, aisle_seats_only, is_aisle


class TestSeatPredicate:
    def test_aisle_letters(self):
        assert is_aisle((12, "C", "smith"))
        assert is_aisle((3, "D", "jones"))

    def test_window_and_middle_are_not_aisle(self):
        assert not is_aisle((12, "A", "smith"))
        assert not is_aisle((12, "B", "smith"))

    def test_unassigned_seat_not_aisle(self):
        assert not is_aisle(0)

    def test_criterion_diagnostic(self):
        ok, why = aisle_seats_only().check([], [(1, "A", "x")])
        assert not ok
        assert "aisle" in why


class TestOrders:
    def test_order_at_stable_price_accepted(self):
        s = SalesScenario(items=3, salesmen=1)
        s.send_salesmen_out()
        s.quote_and_order(0, item=0, quantity=5)
        s.system.run()
        s.salesmen_return()
        assert s.stock_at_base(0) == 45
        assert s.orders_at_base(0) == 5
        assert s.rejections(0) == []

    def test_price_hike_while_disconnected_rejects_quote(self):
        """'If the price of an item has increased by a large amount ... the
        salesman's price or delivery quote must be reconciled.'"""
        s = SalesScenario(items=3, salesmen=1, initial_price=100.0)
        s.send_salesmen_out()
        s.quote_and_order(0, item=0, quantity=5)
        s.system.run()
        s.reprice_at_base(0, 150.0)  # head office raises the price
        s.system.run()
        s.salesmen_return()
        rejections = s.rejections(0)
        assert len(rejections) == 1
        assert "exceeds" in rejections[0][1]
        assert s.stock_at_base(0) == 50  # order rolled back entirely

    def test_price_drop_is_acceptable(self):
        s = SalesScenario(items=3, salesmen=1, initial_price=100.0)
        s.send_salesmen_out()
        s.quote_and_order(0, item=0, quantity=5)
        s.system.run()
        s.reprice_at_base(0, 80.0)
        s.system.run()
        s.salesmen_return()
        assert s.rejections(0) == []
        assert s.stock_at_base(0) == 45

    def test_out_of_stock_rejects_order(self):
        """'if the item is out of stock'"""
        s = SalesScenario(items=2, salesmen=2, initial_stock=8)
        s.send_salesmen_out()
        s.quote_and_order(0, item=0, quantity=6)
        s.quote_and_order(1, item=0, quantity=6)
        s.system.run()
        s.salesmen_return()
        total_rejections = len(s.rejections(0)) + len(s.rejections(1))
        assert total_rejections == 1  # one order exhausted the stock
        assert s.stock_at_base(0) == 2
        assert s.orders_at_base(0) == 6

    def test_restock_lets_both_orders_through(self):
        s = SalesScenario(items=2, salesmen=2, initial_stock=8)
        s.send_salesmen_out()
        s.quote_and_order(0, item=0, quantity=6)
        s.quote_and_order(1, item=0, quantity=6)
        s.system.run()
        s.restock_at_base(0, 10)
        s.system.run()
        s.salesmen_return()
        assert len(s.rejections(0)) + len(s.rejections(1)) == 0
        assert s.stock_at_base(0) == 6


class TestSeats:
    def test_aisle_seat_booking_accepted(self):
        s = SalesScenario(items=2, seats=4, salesmen=1)
        s.send_salesmen_out()
        s.book_seat(0, seat=0, row=12, letter="C")
        s.system.run()
        s.salesmen_return()
        assert s.rejections(0) == []
        assert s.system.nodes[0].store.value(s.seat_oid(0)) == (
            12, "C", "customer"
        )

    def test_window_seat_booking_rejected(self):
        """'The seats must be aisle seats.'"""
        s = SalesScenario(items=2, seats=4, salesmen=1)
        s.send_salesmen_out()
        s.book_seat(0, seat=0, row=12, letter="A")
        s.system.run()
        s.salesmen_return()
        rejections = s.rejections(0)
        assert len(rejections) == 1
        assert "aisle" in rejections[0][1]
        assert s.system.nodes[0].store.value(s.seat_oid(0)) == 0


class TestBaseConsistency:
    def test_base_converged_after_campaign(self):
        s = SalesScenario(items=4, seats=4, salesmen=3, initial_stock=10)
        s.send_salesmen_out()
        for salesman in range(3):
            s.quote_and_order(salesman, item=salesman % 4, quantity=4)
            s.book_seat(salesman, seat=salesman, row=salesman + 1, letter="C")
        s.system.run()
        s.salesmen_return()
        assert s.system.base_converged()
        assert s.system.divergence() == 0
