"""Tests for automatic regime calibration."""

import pytest

from repro.analytic import ModelParameters
from repro.exceptions import ConfigurationError
from repro.harness.calibration import CalibrationResult, calibrate_db_size


def base_params():
    return ModelParameters(db_size=100, nodes=3, tps=4, actions=3,
                           action_time=0.01)


def test_finds_regime_near_target():
    result = calibrate_db_size(
        base_params(),
        target_rate=0.2,  # deadlocks/s
        duration=60.0,
        tolerance=0.6,
    )
    assert isinstance(result, CalibrationResult)
    assert result.measured_rate > 0
    assert result.relative_error <= 0.6 or result.probes >= 3
    assert result.params.db_size >= 8


def test_wait_rate_metric():
    result = calibrate_db_size(
        base_params(),
        target_rate=2.0,
        metric=lambda r: r.rates.wait_rate,
        duration=40.0,
        tolerance=0.5,
    )
    assert result.measured_rate == pytest.approx(2.0, rel=0.8)


def test_unreachable_target_raises():
    light = ModelParameters(db_size=100, nodes=2, tps=0.2, actions=2,
                            action_time=0.001)
    with pytest.raises(ConfigurationError):
        calibrate_db_size(light, target_rate=100.0, duration=10.0)


def test_validation():
    with pytest.raises(ConfigurationError):
        calibrate_db_size(base_params(), target_rate=0)
    with pytest.raises(ConfigurationError):
        calibrate_db_size(base_params(), target_rate=1, tolerance=2.0)
    with pytest.raises(ConfigurationError):
        calibrate_db_size(base_params(), target_rate=1, min_db=10, max_db=5)


def test_probe_budget_respected():
    result = calibrate_db_size(
        base_params(), target_rate=0.15, duration=30.0, max_probes=4,
        tolerance=0.1,  # tight: will exhaust the budget
    )
    assert result.probes <= 4
