"""Tests for the section-6 convergent replication schemes."""

import pytest

from repro.exceptions import ConfigurationError
from repro.replication.convergent import (
    ConvergentReplica,
    diverged_objects,
    exchange,
    fully_sync,
)


def make(n=3, db_size=5):
    return [ConvergentReplica(node_id=i, db_size=db_size) for i in range(n)]


class TestLocalForms:
    def test_replace_sets_value(self):
        (r,) = make(1)
        r.replace(0, 42)
        assert r.value(0) == 42

    def test_append_accumulates_in_timestamp_order(self):
        (r,) = make(1)
        r.append(0, "first")
        r.append(0, "second")
        assert [n.body for n in r.notes(0)] == ["first", "second"]

    def test_increment_materializes(self):
        (r,) = make(1)
        r.increment(0, 5)
        r.increment(0, -2)
        assert r.value(0) == 3

    def test_replace_plus_increments(self):
        (r,) = make(1)
        r.replace(0, 100)
        r.increment(0, 5)
        assert r.value(0) == 105

    def test_non_numeric_replace_values_pass_through(self):
        """Regression: titles/tuples must not collide with the increment
        materialisation (found by the notes_gossip example)."""
        (r,) = make(1)
        r.replace(0, "Design doc")
        assert r.value(0) == "Design doc"
        r.replace(1, ("a", "b"))
        assert r.value(1) == ("a", "b")
        assert r.snapshot()[0] == "Design doc"

    def test_invalid_db_size(self):
        with pytest.raises(ConfigurationError):
            ConvergentReplica(0, 0)


class TestConvergence:
    def test_replace_converges_to_latest(self):
        a, b, c = make(3)
        a.replace(0, 1)
        b.replace(0, 2)  # concurrent with a's
        fully_sync([a, b, c])
        assert diverged_objects([a, b, c]) == 0

    def test_appends_never_lost(self):
        """'The resulting state contains the committed appends.'"""
        a, b, c = make(3)
        a.append(0, "from-a")
        b.append(0, "from-b")
        c.append(0, "from-c")
        fully_sync([a, b, c])
        for replica in (a, b, c):
            assert {n.body for n in replica.notes(0)} == {
                "from-a", "from-b", "from-c",
            }

    def test_increments_never_lost(self):
        a, b, c = make(3)
        a.increment(0, 100)
        b.increment(0, 10)
        c.increment(0, 1)
        fully_sync([a, b, c])
        assert all(r.value(0) == 111 for r in (a, b, c))

    def test_sync_is_idempotent(self):
        a, b = make(2)
        a.replace(0, 5)
        a.increment(1, 3)
        exchange(a, b)
        snap_a, snap_b = a.snapshot(), b.snapshot()
        exchange(a, b)
        assert a.snapshot() == snap_a
        assert b.snapshot() == snap_b

    def test_gossip_order_does_not_matter(self):
        def run(order):
            replicas = make(3)
            replicas[0].replace(0, 7)
            replicas[1].increment(1, 3)
            replicas[2].append(2, "x")
            for i, j in order:
                exchange(replicas[i], replicas[j])
            return [r.snapshot() for r in replicas]

        forward = run([(0, 1), (1, 2), (0, 2)])
        backward = run([(0, 2), (1, 2), (0, 1)])
        assert forward[0] == backward[0]
        assert diverged_objects_from_snaps(forward) == 0


def diverged_objects_from_snaps(snaps):
    first, rest = snaps[0], snaps[1:]
    return sum(1 for k, v in first.items() if any(s[k] != v for s in rest))


class TestLostUpdates:
    def test_concurrent_replaces_lose_one_update(self):
        """'Timestamp schemes are vulnerable to lost updates.'"""
        a, b = make(2)
        a.replace(0, 111)
        b.replace(0, 222)
        fully_sync([a, b])
        total_lost = a.lost_updates + b.lost_updates
        assert total_lost >= 1
        assert a.value(0) == b.value(0)

    def test_conflicts_are_reported(self):
        """Access: 'Rejected updates are reported.'"""
        a, b = make(2)
        a.replace(0, 1)
        b.replace(0, 2)
        fully_sync([a, b])
        reports = a.conflicts_reported + b.conflicts_reported
        assert reports
        oid, mine, theirs = reports[0]
        assert oid == 0

    def test_sequential_replaces_lose_nothing(self):
        a, b = make(2)
        a.replace(0, 1)
        fully_sync([a, b])
        b.replace(0, 2)
        fully_sync([a, b])
        assert a.lost_updates + b.lost_updates == 0
        assert a.value(0) == b.value(0) == 2

    def test_commutative_increments_lose_nothing_ever(self):
        a, b = make(2)
        a.increment(0, 100)
        b.increment(0, 10)
        fully_sync([a, b])
        assert a.lost_updates + b.lost_updates == 0
        assert a.value(0) == 110


class TestScale:
    def test_many_replicas_many_conflicts_still_converge(self):
        replicas = make(6, db_size=3)
        for i, replica in enumerate(replicas):
            for oid in range(3):
                replica.replace(oid, i * 10 + oid)
        rounds = fully_sync(replicas)
        assert diverged_objects(replicas) == 0
        assert rounds >= 1

    def test_fixed_round_gossip(self):
        replicas = make(4)
        replicas[0].replace(0, 9)
        fully_sync(replicas, rounds=1)
        assert diverged_objects(replicas) == 0

    def test_single_replica_trivially_converged(self):
        assert diverged_objects(make(1)) == 0
