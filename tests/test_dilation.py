"""Tests for the time-dilation correction."""

import pytest

from repro.analytic import ModelParameters, eager
from repro.analytic import dilation
from repro.exceptions import ConfigurationError


@pytest.fixture()
def p():
    # the calibrated eager simulation regime
    return ModelParameters(db_size=80, nodes=1, tps=4, actions=3,
                           action_time=0.01)


class TestUtilization:
    def test_utilization_linear_in_nodes(self, p):
        assert dilation.node_utilization(p.with_(nodes=2)) == pytest.approx(0.24)
        assert dilation.node_utilization(p.with_(nodes=6)) == pytest.approx(0.72)

    def test_saturation_point(self, p):
        # rho = 0.12 N -> saturation at N = 1/0.12
        assert dilation.saturation_nodes(p) == pytest.approx(1 / 0.12)
        at = dilation.node_utilization(
            p.with_(nodes=8)
        )
        assert at < 1.0
        assert dilation.node_utilization(p.with_(nodes=9)) > 1.0

    def test_saturation_requires_workload(self, p):
        with pytest.raises(ConfigurationError):
            dilation.saturation_nodes(p.with_(tps=0))


class TestDilatedTime:
    def test_dilation_stretches_actions(self, p):
        q = p.with_(nodes=6)  # rho = 0.72
        assert dilation.dilated_action_time(q) == pytest.approx(0.01 / 0.28)

    def test_infinite_at_saturation(self, p):
        q = p.with_(nodes=10)  # rho = 1.2
        assert dilation.dilated_action_time(q) == float("inf")
        assert dilation.dilated_parameters(q) is None
        assert dilation.dilated_eager_deadlock_rate(q) == float("inf")

    def test_dilated_parameters_substitution(self, p):
        q = p.with_(nodes=4)
        stretched = dilation.dilated_parameters(q)
        assert stretched.action_time > q.action_time
        assert stretched.nodes == q.nodes


class TestDilatedRates:
    def test_always_above_the_paper_curve(self, p):
        for nodes in [2, 3, 4, 6, 8]:
            q = p.with_(nodes=nodes)
            assert dilation.dilated_eager_deadlock_rate(q) > (
                eager.total_deadlock_rate(q)
            )

    def test_equals_equation_12_with_substituted_action_time(self, p):
        q = p.with_(nodes=4)
        stretched = dilation.dilated_parameters(q)
        assert dilation.dilated_eager_deadlock_rate(q) == pytest.approx(
            eager.total_deadlock_rate(stretched)
        )

    def test_negligible_in_the_dilute_open_regime(self):
        """'In a scaleable server system, this time-dilation is a
        second-order effect': at tiny utilization the correction vanishes."""
        p = ModelParameters(db_size=10_000, nodes=2, tps=1, actions=2,
                            action_time=0.001)
        ratio = dilation.dilated_eager_deadlock_rate(p) / (
            eager.total_deadlock_rate(p)
        )
        assert ratio == pytest.approx(1.0, abs=0.01)


class TestEffectiveExponent:
    def test_paper_curve_is_exactly_cubic(self, p):
        exponent = dilation.effective_exponent(
            eager.total_deadlock_rate, p, 2, 6
        )
        assert exponent == pytest.approx(3.0)

    def test_dilated_curve_is_super_cubic(self, p):
        """The closed-system prediction sits above 3 — matching what the
        simulator measures (~3.3-3.9 in this regime)."""
        exponent = dilation.effective_exponent(
            dilation.dilated_eager_deadlock_rate, p, 2, 6
        )
        assert 3.3 < exponent < 4.5

    def test_exponent_grows_toward_saturation(self, p):
        near = dilation.effective_exponent(
            dilation.dilated_eager_deadlock_rate, p, 2, 8
        )
        far = dilation.effective_exponent(
            dilation.dilated_eager_deadlock_rate, p, 2, 4
        )
        assert near > far

    def test_undefined_past_saturation(self, p):
        with pytest.raises(ConfigurationError):
            dilation.effective_exponent(
                dilation.dilated_eager_deadlock_rate, p, 2, 12
            )
