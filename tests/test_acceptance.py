"""Tests for acceptance criteria."""

from repro.core.acceptance import (
    AlwaysAccept,
    IdenticalOutputs,
    NonNegativeOutputs,
    PredicateCriterion,
    PriceNotAbove,
    WithinTolerance,
    combine,
)


class TestAlwaysAccept:
    def test_accepts_anything(self):
        ok, why = AlwaysAccept().check([1, 2], [999, -5])
        assert ok and why == ""


class TestIdenticalOutputs:
    def test_equal_outputs_accepted(self):
        ok, _ = IdenticalOutputs().check([1, 2], [1, 2])
        assert ok

    def test_different_outputs_rejected_with_diagnostic(self):
        ok, why = IdenticalOutputs().check([1, 2], [1, 3])
        assert not ok
        assert "differ" in why

    def test_tuple_vs_list_equivalence(self):
        ok, _ = IdenticalOutputs().check((1, 2), [1, 2])
        assert ok


class TestNonNegative:
    def test_positive_balances_accepted(self):
        ok, _ = NonNegativeOutputs().check([100], [50])
        assert ok

    def test_zero_accepted(self):
        ok, _ = NonNegativeOutputs().check([0], [0])
        assert ok

    def test_overdraft_rejected(self):
        ok, why = NonNegativeOutputs().check([200], [-500])
        assert not ok
        assert "negative" in why

    def test_differing_but_positive_base_accepted(self):
        """'It is fine if the checking account balance is different when the
        transaction is reprocessed.'"""
        ok, _ = NonNegativeOutputs().check([200], [950])
        assert ok

    def test_non_numeric_outputs_ignored(self):
        ok, _ = NonNegativeOutputs().check(["x"], ["y"])
        assert ok


class TestPriceNotAbove:
    def test_lower_base_price_accepted(self):
        ok, _ = PriceNotAbove().check([100.0], [95.0])
        assert ok

    def test_equal_price_accepted(self):
        ok, _ = PriceNotAbove().check([100.0], [100.0])
        assert ok

    def test_higher_price_rejected(self):
        ok, why = PriceNotAbove().check([100.0], [120.0])
        assert not ok
        assert "exceeds" in why

    def test_tolerance_allows_small_increase(self):
        ok, _ = PriceNotAbove(tolerance=25.0).check([100.0], [120.0])
        assert ok


class TestWithinTolerance:
    def test_within_band_accepted(self):
        ok, _ = WithinTolerance(0.10).check([100.0], [105.0])
        assert ok

    def test_outside_band_rejected(self):
        ok, why = WithinTolerance(0.01).check([100.0], [105.0])
        assert not ok
        assert "deviates" in why

    def test_negative_tolerance_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            WithinTolerance(-0.1)


class TestPredicate:
    def test_all_values_must_satisfy(self):
        crit = PredicateCriterion(lambda v: v % 2 == 0, name="even")
        ok, _ = crit.check([], [2, 4])
        assert ok
        ok, why = crit.check([], [2, 3])
        assert not ok

    def test_describe_in_diagnostic(self):
        crit = PredicateCriterion(lambda v: False, describe="must be aisle")
        ok, why = crit.check([], ["12B"])
        assert "must be aisle" in why


class TestCombine:
    def test_all_must_accept(self):
        crit = combine(NonNegativeOutputs(), PriceNotAbove())
        ok, _ = crit.check([100.0], [50.0])
        assert ok

    def test_first_failure_named_in_diagnostic(self):
        crit = combine(NonNegativeOutputs(), PriceNotAbove())
        ok, why = crit.check([100.0], [-5.0])
        assert not ok
        assert "non-negative" in why
        ok, why = crit.check([100.0], [200.0])
        assert not ok
        assert "price-not-above" in why

    def test_combined_name(self):
        crit = combine(NonNegativeOutputs(), AlwaysAccept())
        assert "non-negative" in crit.name
