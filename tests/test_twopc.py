"""Tests for the two-phase-commit coordinator."""

import pytest

from repro.sim import Engine
from repro.storage.deadlock import DeadlockDetector
from repro.storage.lock_manager import LockManager
from repro.storage.store import ObjectStore
from repro.storage.versioning import TimestampGenerator
from repro.storage.wal import WriteAheadLog
from repro.txn.manager import TransactionManager
from repro.txn.ops import WriteOp
from repro.txn.twopc import Participant, TwoPhaseCommit, Vote


def make_node(engine, node_id, detector):
    store = ObjectStore(node_id, 10)
    locks = LockManager(engine, node_id, detector)
    wal = WriteAheadLog()
    clock = TimestampGenerator(node_id)
    return TransactionManager(engine, node_id, store, locks, wal, clock,
                              action_time=0.0)


class RefusingParticipant(Participant):
    def prepare(self, txn):
        return Vote.NO
        yield  # pragma: no cover


def run_2pc(engine, coordinator, txn, participants):
    p = engine.process(coordinator.run(txn, participants))
    engine.run()
    return p.value


def distributed_write(engine, managers, value):
    """Execute the same write at every node under one transaction."""
    txn = managers[0].begin()

    def proc():
        for tm in managers:
            yield from tm.execute(txn, WriteOp(3, value))

    p = engine.process(proc())
    engine.run()
    assert p.exception is None
    return txn


def test_unanimous_yes_commits_everywhere():
    engine = Engine()
    detector = DeadlockDetector()
    managers = [make_node(engine, i, detector) for i in range(3)]
    txn = distributed_write(engine, managers, 42)
    coordinator = TwoPhaseCommit(engine)
    committed = run_2pc(
        engine, coordinator, txn, [Participant(tm) for tm in managers]
    )
    assert committed is True
    assert txn.state.value == "committed"
    assert all(tm.store.value(3) == 42 for tm in managers)
    for tm in managers:
        tm.assert_quiescent()
    assert coordinator.commits == 1


def test_one_no_vote_aborts_everywhere():
    engine = Engine()
    detector = DeadlockDetector()
    managers = [make_node(engine, i, detector) for i in range(3)]
    txn = distributed_write(engine, managers, 42)
    coordinator = TwoPhaseCommit(engine)
    participants = [
        Participant(managers[0]),
        RefusingParticipant(managers[1]),
        Participant(managers[2]),
    ]
    committed = run_2pc(engine, coordinator, txn, participants)
    assert committed is False
    assert txn.state.value == "aborted"
    # all replicas rolled back
    assert all(tm.store.value(3) == 0 for tm in managers)
    assert coordinator.aborts == 1


def test_already_aborted_txn_never_commits():
    engine = Engine()
    detector = DeadlockDetector()
    managers = [make_node(engine, i, detector) for i in range(2)]
    txn = distributed_write(engine, managers, 7)
    txn.mark_aborted(engine.now, reason="external")
    coordinator = TwoPhaseCommit(engine)
    committed = run_2pc(
        engine, coordinator, txn, [Participant(tm) for tm in managers]
    )
    assert committed is False
    assert all(tm.store.value(3) == 0 for tm in managers)


def test_log_force_time_costs_virtual_time():
    engine = Engine()
    detector = DeadlockDetector()
    managers = [make_node(engine, i, detector) for i in range(2)]
    txn = distributed_write(engine, managers, 9)
    start = engine.now
    coordinator = TwoPhaseCommit(engine)
    run_2pc(
        engine,
        coordinator,
        txn,
        [Participant(tm, log_force_time=0.5) for tm in managers],
    )
    # prepares run concurrently (0.5) then commits sequentially (2 x 0.5)
    assert engine.now - start == pytest.approx(1.5)


def test_prepared_set_tracks_in_doubt_transactions():
    engine = Engine()
    detector = DeadlockDetector()
    tm = make_node(engine, 0, detector)
    txn = distributed_write(engine, [tm], 1)
    participant = Participant(tm)
    p = engine.process(participant.prepare(txn))
    engine.run()
    assert p.value is Vote.YES
    assert txn.txn_id in participant.prepared
    p2 = engine.process(TwoPhaseCommit(engine).run(txn, [participant]))
    engine.run()
    assert txn.txn_id not in participant.prepared
