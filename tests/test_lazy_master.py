"""Tests for lazy-master replication."""

import pytest

from repro.replication.lazy_master import LazyMasterSystem
from repro.replication import SystemSpec
from repro.txn.ops import IncrementOp, ReadOp, WriteOp


def make(num_nodes=3, db_size=12, **kw):
    kw.setdefault("action_time", 0.01)
    extras = {k: kw.pop(k)
              for k in ("ownership", "require_connected_masters",
                        "master_broadcasts")
              if k in kw}
    return LazyMasterSystem(
        SystemSpec(num_nodes=num_nodes, db_size=db_size, **kw), **extras)


def test_update_executes_at_master_then_propagates():
    system = make()
    oid = 4  # master is node 1
    p = system.submit(0, [WriteOp(oid, 42)])
    system.run()
    assert p.value.state.value == "committed"
    for node in system.nodes:
        assert node.store.value(oid) == 42


def test_no_reconciliations_by_construction():
    """'lazy-master systems have no reconciliation failures'"""
    system = make(db_size=6)
    for origin in range(3):
        for oid in range(6):
            system.submit(origin, [WriteOp(oid, origin * 10 + oid)])
    system.run()
    assert system.metrics.reconciliations == 0
    assert system.converged()


def test_concurrent_writers_serialize_at_master():
    system = make(db_size=3, retry_deadlocks=True)
    for origin in range(3):
        for _ in range(5):
            system.submit(origin, [IncrementOp(1, 1)])
    system.run()
    # master serialization preserves every increment
    assert system.nodes[0].store.value(1) == 15
    assert system.converged()


def test_stale_slave_updates_suppressed():
    """'If the record timestamp is newer than a replica update timestamp,
    the update is stale and can be ignored.'"""
    system = make(message_delay=2.0, db_size=3)
    oid = 1  # mastered at node 1
    system.submit(0, [WriteOp(oid, 1)])
    system.run(until=1.0)
    system.submit(2, [WriteOp(oid, 2)])
    system.run()
    # both committed at the master in order; slaves saw two broadcasts and
    # must converge on the later value whatever the arrival order
    assert all(node.store.value(oid) == 2 for node in system.nodes)
    assert system.converged()


def test_reads_are_local_committed_read_by_default():
    system = make()
    p = system.submit(2, [ReadOp(0)])
    system.run()
    assert p.value.reads == [0]


def test_read_locks_route_to_master_when_serializable():
    system = make(lock_reads=True, action_time=0.05)
    events = []

    # a long-running master transaction holds the lock on object 0 (master
    # node 0); a serializable reader from node 2 must wait for it.
    def hold_and_release():
        p1 = system.submit(0, [WriteOp(0, 7)])
        return p1

    hold_and_release()
    p2 = system.submit(2, [ReadOp(0)])
    system.run()
    assert p2.value.reads == [7]  # saw the committed master value


def test_mobile_node_cannot_update_while_disconnected():
    """'Lazy-master replication is not appropriate for mobile
    applications.'"""
    system = make()
    system.network.disconnect(2)
    p = system.submit(2, [WriteOp(0, 5)])
    system.run()
    assert p.value.state.value == "aborted"
    assert p.value.abort_reason == "master-unreachable"
    assert system.blocked_by_disconnect == 1


def test_update_blocked_when_master_disconnected():
    system = make()
    system.network.disconnect(1)  # master of oids 1, 4, 7, 10
    p = system.submit(0, [WriteOp(4, 9)])
    system.run()
    assert p.value.state.value == "aborted"


def test_update_allowed_when_unrelated_node_disconnected():
    system = make()
    system.network.disconnect(2)
    oid = 0  # mastered at node 0
    p = system.submit(0, [WriteOp(oid, 9)])
    system.run()
    assert p.value.state.value == "committed"
    # node 2's replica refresh parks until it reconnects
    assert system.nodes[2].store.value(oid) == 0
    system.network.reconnect(2)
    system.run()
    assert system.nodes[2].store.value(oid) == 9


def test_housekeeping_updates_counted():
    system = make(num_nodes=4)
    system.submit(0, [WriteOp(0, 1)])
    system.run()
    # slave refreshes go to every node except the object's master: N-1 = 3
    assert system.metrics.replica_updates == 3
    assert system.converged()


def test_cross_master_transaction_touches_both_masters():
    system = make(num_nodes=3, db_size=6)
    p = system.submit(0, [WriteOp(1, 5), WriteOp(2, 6)])  # masters 1 and 2
    system.run()
    assert p.value.state.value == "committed"
    assert system.nodes[1].store.value(1) == 5
    assert system.nodes[2].store.value(2) == 6
    assert system.converged()


class TestMasterBroadcastVariant:
    """The paper's alternative propagation: 'each master node sends replica
    updates to slaves in sequential commit order'."""

    def test_converges_like_the_default(self):
        for master_broadcasts in (False, True):
            system = make(num_nodes=3, db_size=6,
                          master_broadcasts=master_broadcasts)
            for origin in range(3):
                system.submit(origin, [WriteOp(origin, origin + 1),
                                       WriteOp(origin + 3, origin + 1)])
            system.run()
            assert system.converged(), f"master_broadcasts={master_broadcasts}"

    def test_updates_ship_from_the_masters(self):
        system = make(num_nodes=3, db_size=6, master_broadcasts=True)
        # oids 1 and 2 are mastered at nodes 1 and 2; origin is node 0
        system.submit(0, [WriteOp(1, 5), WriteOp(2, 6)])
        system.run()
        assert system.converged()
        # each master shipped its own slice: sources include nodes 1 and 2
        # (observable via per-stream FIFO behaviour below)

    def test_per_master_streams_are_fifo_no_stale_suppression(self):
        """With one FIFO stream per master, sequential single-master updates
        never arrive out of order, so no stale updates are suppressed."""
        system = make(num_nodes=3, db_size=3, message_delay=0.2,
                      master_broadcasts=True)
        oid = 0  # master node 0
        for value in range(1, 6):
            system.submit(0, [WriteOp(oid, value)])
            system.run(until=system.engine.now + 0.01)
        system.run()
        assert all(node.store.value(oid) == 5 for node in system.nodes)
        assert system.metrics.stale_updates == 0

    def test_cross_master_transaction_splits_into_per_master_messages(self):
        system = make(num_nodes=3, db_size=6, master_broadcasts=True)
        before = system.network.messages_sent
        system.submit(0, [WriteOp(1, 5), WriteOp(2, 6)])  # masters 1 and 2
        system.run()
        sent = system.network.messages_sent - before
        # destination 0 receives two slices (from masters 1 and 2);
        # destinations 1 and 2 each receive the other's slice: 4 messages
        assert sent == 4


def test_rpc_delay_slows_remote_master_updates():
    fast = make(message_delay=0.0)
    slow = make(message_delay=0.5)
    for system in (fast, slow):
        p = system.submit(0, [WriteOp(1, 9)])  # master: node 1 (remote)
        system.run()
        system.last = p.value.duration
    assert slow.last > fast.last
