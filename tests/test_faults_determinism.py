"""Determinism regressions for the fault subsystem.

The seeding contract under test:

* the same (workload seed, fault plan) must reproduce a run *exactly* —
  byte-identical exported metrics and an identical trace event sequence;
* fault randomness is a **forked** child of the master source
  (``rng.spawn(f"faults/{seed}")``), so changing ``fault_seed`` re-rolls
  the fault timeline while every workload stream stays byte-identical.
"""

import json

import pytest

from repro.analytic import ModelParameters
from repro.faults import FaultPlan
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.export import result_to_dict
from repro.sim import RandomSource
from repro.sim.tracing import Tracer
from repro.txn.transaction import reset_txn_ids

PARAMS = ModelParameters(
    db_size=50, nodes=3, tps=5, actions=3, action_time=0.005
)
DURATION = 20.0
SPEC = "drop=0.1,dup=0.2,reorder=0.3,jitter=0.02,partition=3"


def run(seed=1, fault_seed=0, tracer=None):
    # global txn ids leak across in-process runs; reset for byte-equality
    reset_txn_ids()
    plan = FaultPlan.from_spec(
        SPEC, num_nodes=PARAMS.nodes, duration=DURATION, fault_seed=fault_seed
    )
    config = ExperimentConfig(
        strategy="lazy-master",
        params=PARAMS,
        duration=DURATION,
        seed=seed,
        faults=plan,
        tracer=tracer,
    )
    return run_experiment(config)


def exported(result):
    return json.dumps(result_to_dict(result), sort_keys=True)


def trace_lines(tracer):
    return [
        (event.time, event.category, sorted(event.detail.items()))
        for event in tracer.events()
    ]


def test_same_seed_and_plan_reproduce_the_run_exactly():
    first = run(seed=1)
    second = run(seed=1)
    assert exported(first) == exported(second)
    assert first.extra["fault_stats"] == second.extra["fault_stats"]


def test_same_seed_and_plan_reproduce_the_trace_exactly():
    t1, t2 = Tracer(), Tracer()
    run(seed=1, tracer=t1)
    run(seed=1, tracer=t2)
    assert len(t1) > 0
    assert trace_lines(t1) == trace_lines(t2)


def test_workload_seed_still_matters():
    assert exported(run(seed=1)) != exported(run(seed=2))


def test_fault_seed_reshuffles_faults_without_touching_the_workload():
    base = run(seed=1, fault_seed=0)
    reseeded = run(seed=1, fault_seed=99)
    # same offered load: the generator's streams never saw the fault draws
    assert base.extra["submitted"] == reseeded.extra["submitted"]
    # but the fault timeline itself re-rolled
    assert base.extra["fault_stats"] != reseeded.extra["fault_stats"]


def test_spawned_stream_does_not_advance_parent_streams():
    # the RandomSource property the whole contract rests on: forking a
    # child (what the injector does) leaves every parent stream untouched
    plain = RandomSource(42)
    baseline = [plain.stream("ops").random() for _ in range(20)]

    forked = RandomSource(42)
    child = forked.spawn("faults/0").stream("link")
    for _ in range(100):
        child.random()
    assert [forked.stream("ops").random() for _ in range(20)] == baseline


def test_spawn_is_deterministic_per_name():
    a = RandomSource(42).spawn("faults/0").stream("link")
    b = RandomSource(42).spawn("faults/0").stream("link")
    c = RandomSource(42).spawn("faults/1").stream("link")
    first = [a.random() for _ in range(10)]
    assert [b.random() for _ in range(10)] == first
    assert [c.random() for _ in range(10)] != first
