"""Tests for the waits-for graph and deadlock detection."""

import pytest

from repro.exceptions import DeadlockAbort
from repro.sim import Engine
from repro.storage.deadlock import (
    DeadlockDetector,
    oldest_victim,
    youngest_victim,
)
from repro.storage.lock_manager import LockManager, LockMode


class FakeTxn:
    _next = iter(range(1, 10_000)).__next__

    def __init__(self):
        self.txn_id = FakeTxn._next()

    def __repr__(self):
        return f"T{self.txn_id}"


def make_lm(detector=None, engine=None):
    engine = engine or Engine()
    detector = detector or DeadlockDetector()
    return LockManager(engine, 0, detector), detector, engine


class TestCycleDetection:
    def test_no_cycle_in_chain(self):
        det = DeadlockDetector()
        a, b, c = FakeTxn(), FakeTxn(), FakeTxn()
        det.set_waits(a, [b], manager=None, oid=1, request=None)
        det.set_waits(b, [c], manager=None, oid=2, request=None)
        assert det.find_cycle(a) is None

    def test_two_cycle(self):
        det = DeadlockDetector()
        a, b = FakeTxn(), FakeTxn()
        det.set_waits(a, [b], manager=None, oid=1, request=None)
        det.set_waits(b, [a], manager=None, oid=2, request=None)
        cycle = det.find_cycle(a)
        assert cycle is not None
        assert set(cycle) == {a, b}

    def test_three_cycle(self):
        det = DeadlockDetector()
        a, b, c = FakeTxn(), FakeTxn(), FakeTxn()
        det.set_waits(a, [b], manager=None, oid=1, request=None)
        det.set_waits(b, [c], manager=None, oid=2, request=None)
        det.set_waits(c, [a], manager=None, oid=3, request=None)
        cycle = det.find_cycle(a)
        assert cycle is not None
        assert set(cycle) == {a, b, c}

    def test_cycle_not_involving_start_found_if_reachable(self):
        det = DeadlockDetector()
        a, b, c = FakeTxn(), FakeTxn(), FakeTxn()
        # a -> b <-> c ; the b-c cycle is reachable from a
        det.set_waits(a, [b], manager=None, oid=1, request=None)
        det.set_waits(b, [c], manager=None, oid=2, request=None)
        det.set_waits(c, [b], manager=None, oid=3, request=None)
        cycle = det.find_cycle(a)
        assert cycle is not None
        assert set(cycle) == {b, c}

    def test_clear_waits_breaks_cycle(self):
        det = DeadlockDetector()
        a, b = FakeTxn(), FakeTxn()
        det.set_waits(a, [b], manager=None, oid=1, request=None)
        det.set_waits(b, [a], manager=None, oid=2, request=None)
        det.clear_waits(b)
        assert det.find_cycle(a) is None

    def test_self_edge_excluded(self):
        det = DeadlockDetector()
        a = FakeTxn()
        det.set_waits(a, [a], manager=None, oid=1, request=None)
        assert det.find_cycle(a) is None


class TestVictimPolicies:
    def test_youngest_victim(self):
        a, b = FakeTxn(), FakeTxn()  # b is younger (higher id)
        assert youngest_victim([a, b]) is b

    def test_oldest_victim(self):
        a, b = FakeTxn(), FakeTxn()
        assert oldest_victim([a, b]) is a


class TestIntegratedDeadlock:
    """Deadlocks arising from real lock acquisition."""

    def test_classic_two_txn_deadlock_aborts_youngest(self):
        lm, det, engine = make_lm()
        a, b = FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.EXCLUSIVE)
        lm.acquire(b, 2, LockMode.EXCLUSIVE)
        ea = lm.acquire(a, 2, LockMode.EXCLUSIVE)  # a waits for b
        assert ea is not None and ea.pending
        eb = lm.acquire(b, 1, LockMode.EXCLUSIVE)  # b waits for a -> cycle
        # victim is b (youngest): its request failed
        assert isinstance(eb.exception, DeadlockAbort)
        assert det.cycles_found == 1
        # a is still waiting; releasing b's locks lets it proceed
        lm.release_all(b)
        assert ea.settled and ea.exception is None

    def test_deadlock_hook_fires(self):
        engine = Engine()
        det = DeadlockDetector()
        victims = []
        lm = LockManager(engine, 0, det, on_deadlock=victims.append)
        a, b = FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.EXCLUSIVE)
        lm.acquire(b, 2, LockMode.EXCLUSIVE)
        lm.acquire(a, 2, LockMode.EXCLUSIVE)
        lm.acquire(b, 1, LockMode.EXCLUSIVE)
        assert victims == [b]

    def test_oldest_victim_policy_changes_casualty(self):
        engine = Engine()
        det = DeadlockDetector(victim_policy=oldest_victim)
        lm = LockManager(engine, 0, det)
        a, b = FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.EXCLUSIVE)
        lm.acquire(b, 2, LockMode.EXCLUSIVE)
        ea = lm.acquire(a, 2, LockMode.EXCLUSIVE)
        eb = lm.acquire(b, 1, LockMode.EXCLUSIVE)
        assert isinstance(ea.exception, DeadlockAbort)  # a (oldest) dies
        assert eb.pending

    def test_cross_node_cycle_detected_with_shared_detector(self):
        """An eager transaction holds locks at several nodes; the shared
        detector must see cycles spanning lock managers."""
        engine = Engine()
        det = DeadlockDetector()
        lm0 = LockManager(engine, 0, det)
        lm1 = LockManager(engine, 1, det)
        a, b = FakeTxn(), FakeTxn()
        lm0.acquire(a, 1, LockMode.EXCLUSIVE)  # a holds obj1@node0
        lm1.acquire(b, 1, LockMode.EXCLUSIVE)  # b holds obj1@node1
        ea = lm1.acquire(a, 1, LockMode.EXCLUSIVE)  # a waits at node1
        eb = lm0.acquire(b, 1, LockMode.EXCLUSIVE)  # b waits at node0 -> cycle
        assert isinstance(eb.exception, DeadlockAbort)
        assert ea.pending

    def test_three_way_cycle(self):
        lm, det, engine = make_lm()
        a, b, c = FakeTxn(), FakeTxn(), FakeTxn()
        lm.acquire(a, 1, LockMode.EXCLUSIVE)
        lm.acquire(b, 2, LockMode.EXCLUSIVE)
        lm.acquire(c, 3, LockMode.EXCLUSIVE)
        lm.acquire(a, 2, LockMode.EXCLUSIVE)  # a -> b
        lm.acquire(b, 3, LockMode.EXCLUSIVE)  # b -> c
        ec = lm.acquire(c, 1, LockMode.EXCLUSIVE)  # c -> a: cycle
        assert isinstance(ec.exception, DeadlockAbort)  # c is youngest

    def test_no_false_positives_on_parallel_waiters(self):
        lm, det, engine = make_lm()
        holder = FakeTxn()
        lm.acquire(holder, 1, LockMode.EXCLUSIVE)
        waiters = [FakeTxn() for _ in range(5)]
        events = [lm.acquire(w, 1, LockMode.EXCLUSIVE) for w in waiters]
        assert det.cycles_found == 0
        assert all(e.pending for e in events)

    def test_abort_waiting_txn_unknown_is_noop(self):
        det = DeadlockDetector()
        det.abort_waiting_txn(FakeTxn(), DeadlockAbort())  # must not raise
