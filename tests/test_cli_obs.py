"""CLI smoke tests for the observability verbs: trace, report, series-out."""

import json

from repro.cli import main

_SMALL = [
    "--nodes", "3", "--db-size", "60", "--tps", "4",
    "--actions", "3", "--action-time", "0.002", "--duration", "10",
]


def test_trace_command_writes_perfetto_json(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main([
        "trace", "--strategy", "lazy-group", *_SMALL,
        "--faults", "partition=3", "--out", str(out),
    ]) == 0
    printed = capsys.readouterr().out
    assert "ui.perfetto.dev" in printed
    doc = json.load(out.open())
    assert doc["traceEvents"]
    body = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    assert [e["ts"] for e in body] == sorted(e["ts"] for e in body)
    assert any(e["cat"] == "partition" for e in body)


def test_report_command_stdout(capsys):
    assert main([
        "report", "--strategy", "lazy-group", *_SMALL,
    ]) == 0
    out = capsys.readouterr().out
    assert "## Rates" in out
    assert "## Time series" in out
    assert "commit_rate" in out


def test_report_command_files(tmp_path, capsys):
    md = tmp_path / "report.md"
    js = tmp_path / "report.json"
    assert main([
        "report", "--strategy", "two-tier", *_SMALL,
        "--sample-interval", "0.5",
        "--out", str(md), "--json", str(js),
    ]) == 0
    assert "tentative_queue" in md.read_text()
    doc = json.load(js.open())
    assert doc["sample_interval"] == 0.5


def test_simulate_profile(capsys):
    assert main([
        "simulate", "--strategy", "lazy-group", *_SMALL, "--profile",
    ]) == 0
    out = capsys.readouterr().out
    assert "engine hot spots" in out
    assert "lazy-group-txn" in out


def test_simulate_trace_out(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main([
        "simulate", "--strategy", "lazy-master", *_SMALL,
        "--trace", "all", "--trace-out", str(out),
    ]) == 0
    assert json.load(out.open())["traceEvents"]


def test_simulate_trace_out_requires_trace(tmp_path):
    import pytest

    with pytest.raises(SystemExit):
        main([
            "simulate", "--strategy", "lazy-master", *_SMALL,
            "--trace-out", str(tmp_path / "trace.json"),
        ])


def test_sweep_series_out(tmp_path, capsys):
    series_dir = tmp_path / "series"
    assert main([
        "sweep", "--strategy", "lazy-group", "--nodes", "2,3",
        "--seeds", "2", "--db-size", "60", "--tps", "4",
        "--duration", "8", "--jobs", "0", "--no-cache",
        "--series-out", str(series_dir),
    ]) == 0
    files = sorted(series_dir.glob("*.json"))
    assert [f.name for f in files] == [
        "lazy-group_nodes2.json", "lazy-group_nodes3.json",
    ]
    doc = json.load(files[0].open())
    assert {r["seed"] for r in doc["runs"]} == {0, 1}
    series = doc["runs"][0]["series"]["series"]
    assert "commit_rate" in series and "reconciliation_rate" in series
