"""Tests for Process: interruption, nesting, liveness."""

import pytest

from repro.exceptions import ProcessKilled, SimulationError
from repro.sim import Engine


def test_process_alive_until_finished():
    engine = Engine()

    def proc():
        yield engine.timeout(5.0)

    p = engine.process(proc())
    assert p.alive
    engine.run(until=1.0)
    assert p.alive
    engine.run()
    assert not p.alive


def test_interrupt_waiting_process_raises_inside():
    engine = Engine()
    caught = []

    def sleeper():
        try:
            yield engine.timeout(100.0)
        except ProcessKilled as exc:
            caught.append(str(exc))
            return "interrupted"

    p = engine.process(sleeper())
    engine.schedule(2.0, p.interrupt)
    engine.run()
    assert p.value == "interrupted"
    assert caught
    assert engine.now == pytest.approx(2.0)


def test_interrupt_with_custom_exception():
    engine = Engine()

    class Custom(Exception):
        pass

    def sleeper():
        try:
            yield engine.timeout(100.0)
        except Custom:
            return "custom"

    p = engine.process(sleeper())
    engine.schedule(1.0, p.interrupt, Custom())
    engine.run()
    assert p.value == "custom"


def test_uncaught_interrupt_fails_process():
    engine = Engine()

    def sleeper():
        yield engine.timeout(100.0)

    p = engine.process(sleeper())
    engine.schedule(1.0, p.interrupt)
    engine.run()
    assert isinstance(p.exception, ProcessKilled)


def test_interrupt_finished_process_is_noop():
    engine = Engine()

    def quick():
        yield engine.timeout(1.0)
        return "ok"

    p = engine.process(quick())
    engine.run()
    p.interrupt()  # must not raise
    assert p.value == "ok"


def test_interrupt_process_waiting_on_event_detaches_cleanly():
    engine = Engine()
    gate = engine.event()

    def waiter():
        try:
            yield gate
        except ProcessKilled:
            return "interrupted"

    p = engine.process(waiter())
    engine.schedule(1.0, p.interrupt)
    engine.run(until=2.0)
    assert p.value == "interrupted"
    # the event can still settle without resurrecting the process
    gate.succeed("late")
    engine.run()
    assert p.value == "interrupted"


def test_interrupt_not_yet_started_process_rejected():
    engine = Engine()

    def proc():
        yield engine.timeout(1.0)

    p = engine.process(proc())
    # the process has not run its first step, so it is not waiting yet
    with pytest.raises(SimulationError):
        p.interrupt()


def test_nested_process_chain_returns_through_levels():
    engine = Engine()

    def level3():
        yield engine.timeout(1.0)
        return 3

    def level2():
        value = yield engine.process(level3())
        return value + 2

    def level1():
        value = yield engine.process(level2())
        return value + 1

    p = engine.process(level1())
    engine.run()
    assert p.value == 6


def test_yield_from_subgenerator():
    engine = Engine()

    def helper():
        yield engine.timeout(1.0)
        return "helped"

    def main():
        result = yield from helper()
        return result

    p = engine.process(main())
    engine.run()
    assert p.value == "helped"


def test_process_is_event_other_waiters_notified():
    engine = Engine()

    def worker():
        yield engine.timeout(2.0)
        return "w"

    worker_proc = engine.process(worker())
    results = []

    def observer(tag):
        value = yield worker_proc
        results.append((tag, value, engine.now))

    engine.process(observer("a"))
    engine.process(observer("b"))
    engine.run()
    assert results == [("a", "w", 2.0), ("b", "w", 2.0)]
