"""Tests for multi-seed statistics."""

import pytest

from repro.analytic import ModelParameters
from repro.exceptions import ConfigurationError
from repro.harness import ExperimentConfig
from repro.harness.stats import (
    RateEstimate,
    estimate,
    repeat_experiment,
    t_quantile_95,
)


class TestTQuantile:
    def test_known_values(self):
        assert t_quantile_95(1) == pytest.approx(12.706, rel=1e-3)
        assert t_quantile_95(10) == pytest.approx(2.228, rel=1e-3)

    def test_large_dof_approaches_normal(self):
        assert t_quantile_95(1000) == pytest.approx(1.96, abs=0.01)

    def test_invalid_dof(self):
        with pytest.raises(ConfigurationError):
            t_quantile_95(0)


class TestEstimate:
    def test_mean_and_std(self):
        est = estimate("x", [1.0, 2.0, 3.0])
        assert est.mean == pytest.approx(2.0)
        assert est.std == pytest.approx(1.0)
        assert est.lo < 2.0 < est.hi
        assert est.contains(2.0)
        assert "95% CI" in est.format()

    def test_identical_samples_zero_width(self):
        est = estimate("x", [5.0, 5.0, 5.0, 5.0])
        assert est.ci95_half_width == 0.0
        assert est.contains(5.0)
        assert not est.contains(5.1)

    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            estimate("x", [1.0])

    def test_interval_narrows_with_samples(self):
        wide = estimate("x", [1.0, 3.0])
        narrow = estimate("x", [1.0, 3.0, 1.0, 3.0, 1.0, 3.0, 1.0, 3.0])
        assert narrow.ci95_half_width < wide.ci95_half_width


class TestRepeatExperiment:
    def config(self):
        return ExperimentConfig(
            strategy="lazy-master",
            params=ModelParameters(db_size=60, nodes=2, tps=3, actions=2,
                                   action_time=0.002),
            duration=20.0,
        )

    def test_summarises_all_rates(self):
        stats = repeat_experiment(self.config(), seeds=[1, 2, 3])
        assert "commit_rate" in stats.rates
        assert stats["commit_rate"].mean > 0
        assert len(stats["commit_rate"].samples) == 3
        assert stats.table_rows()

    def test_mean_commit_rate_tracks_offered_load(self):
        stats = repeat_experiment(self.config(), seeds=[1, 2, 3, 4])
        # offered load is 3 tps x 2 nodes = 6/s
        assert stats["commit_rate"].mean == pytest.approx(6.0, rel=0.25)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            repeat_experiment(self.config(), seeds=[1])
        with pytest.raises(ConfigurationError):
            repeat_experiment(self.config(), seeds=[1, 1])

    def test_deterministic_given_seed_set(self):
        a = repeat_experiment(self.config(), seeds=[5, 6])
        b = repeat_experiment(self.config(), seeds=[5, 6])
        assert a["commit_rate"].samples == b["commit_rate"].samples
