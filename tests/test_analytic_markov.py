"""Property-based tests for the Markov analytic fast path.

Two layers, matching the module split:

* :mod:`repro.analytic.markov` — the solvers.  For random irreducible
  chains the stationary vector must be a probability distribution
  (non-negative, sums to 1), must actually be stationary (the L1 residual
  ``||pi P - pi||`` below tolerance), and the direct and power solvers
  must agree on it.
* :mod:`repro.analytic.markov_strategies` — the chains.  Every strategy's
  predicted danger rate must be monotone in node count and transaction
  size (the paper's central claim is that danger *grows* with both), the
  exit rates must conserve the arrival rate, and in the low-contention
  limit each chain must converge to its closed-form ancestor.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import (
    ModelParameters,
    eager,
    lazy_group,
    lazy_master,
)
from repro.analytic.markov import (
    MarkovChain,
    residual,
    state_map,
    stationary_distribution,
)
from repro.analytic.markov_strategies import (
    MARKOV_REFERENCE,
    MARKOV_STRATEGIES,
    build_chain,
    predict,
    reference_rate,
)
from repro.exceptions import ConfigurationError

SETTINGS = settings(max_examples=60, deadline=None)

# fully-connected random chains are irreducible by construction
chain_strategy = st.integers(2, 5).flatmap(
    lambda n: st.lists(
        st.floats(0.01, 50.0), min_size=n * (n - 1), max_size=n * (n - 1)
    ).map(lambda rates: _dense_chain(n, rates))
)


def _dense_chain(n, rates):
    states = tuple(f"s{i}" for i in range(n))
    it = iter(rates)
    transitions = {
        (states[i], states[j]): next(it)
        for i in range(n)
        for j in range(n)
        if i != j
    }
    return MarkovChain.from_transitions(states, transitions)


# moderate-contention Table-2 points for the strategy-chain properties
params_strategy = st.builds(
    ModelParameters,
    db_size=st.integers(1_000, 1_000_000),
    nodes=st.integers(1, 24),
    tps=st.floats(0.1, 10.0),
    actions=st.integers(2, 8),
    action_time=st.floats(1e-4, 0.01),
    message_delay=st.floats(0.0, 0.01),
)


# --------------------------------------------------------------------- #
# solver properties
# --------------------------------------------------------------------- #


class TestStationaryDistribution:
    @SETTINGS
    @given(chain_strategy)
    def test_is_a_probability_distribution(self, chain):
        pi = stationary_distribution(chain)
        assert all(p >= 0.0 for p in pi)
        assert sum(pi) == pytest.approx(1.0, abs=1e-12)

    @SETTINGS
    @given(chain_strategy)
    def test_residual_below_tolerance(self, chain):
        pi = stationary_distribution(chain)
        assert residual(chain, pi) < 1e-9

    @SETTINGS
    @given(chain_strategy)
    def test_direct_and_power_solvers_agree(self, chain):
        direct = stationary_distribution(chain, method="direct")
        power = stationary_distribution(chain, method="power", tol=1e-14)
        for a, b in zip(direct, power):
            assert a == pytest.approx(b, abs=1e-8)

    @SETTINGS
    @given(chain_strategy)
    def test_generator_rows_sum_to_zero(self, chain):
        for row in chain.generator():
            assert sum(row) == pytest.approx(0.0, abs=1e-12)

    @SETTINGS
    @given(chain_strategy)
    def test_uniformised_kernel_is_stochastic(self, chain):
        for row in chain.transition_matrix():
            assert all(entry >= 0.0 for entry in row)
            assert sum(row) == pytest.approx(1.0, abs=1e-12)

    def test_state_map_pairs_names_with_probabilities(self):
        chain = MarkovChain.from_transitions(
            ("a", "b"), {("a", "b"): 1.0, ("b", "a"): 3.0}
        )
        pi = stationary_distribution(chain)
        mapped = state_map(chain, pi)
        assert mapped["a"] == pytest.approx(0.75)
        assert mapped["b"] == pytest.approx(0.25)


class TestSolverErrorPaths:
    def test_reducible_chain_rejected(self):
        # two disconnected components: no unique stationary distribution
        chain = MarkovChain.from_transitions(
            ("a", "b", "c", "d"),
            {("a", "b"): 1.0, ("b", "a"): 1.0,
             ("c", "d"): 1.0, ("d", "c"): 1.0},
        )
        with pytest.raises(ConfigurationError, match="reducible"):
            stationary_distribution(chain)

    def test_unknown_method_rejected(self):
        chain = MarkovChain.from_transitions(
            ("a", "b"), {("a", "b"): 1.0, ("b", "a"): 1.0}
        )
        with pytest.raises(ConfigurationError, match="method"):
            stationary_distribution(chain, method="magic")

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            MarkovChain.from_transitions(
                ("a", "b"), {("a", "b"): -1.0, ("b", "a"): 1.0}
            )

    def test_unknown_transition_state_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown state"):
            MarkovChain.from_transitions(("a", "b"), {("a", "z"): 1.0})

    def test_duplicate_states_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            MarkovChain(states=("a", "a"),
                        rates=((0.0, 1.0), (1.0, 0.0)))

    def test_residual_checks_vector_length(self):
        chain = MarkovChain.from_transitions(
            ("a", "b"), {("a", "b"): 1.0, ("b", "a"): 1.0}
        )
        with pytest.raises(ConfigurationError):
            residual(chain, (0.5, 0.25, 0.25))


# --------------------------------------------------------------------- #
# strategy-chain properties
# --------------------------------------------------------------------- #


class TestStrategyChains:
    @SETTINGS
    @given(params_strategy, st.sampled_from(MARKOV_STRATEGIES))
    def test_reference_rate_monotonic_in_nodes(self, p, strategy):
        grown = p.with_(nodes=p.nodes + 1)
        low = reference_rate(strategy, p)
        high = reference_rate(strategy, grown)
        assert high >= low * (1.0 - 1e-9)

    @SETTINGS
    @given(params_strategy, st.sampled_from(MARKOV_STRATEGIES))
    def test_reference_rate_monotonic_in_txn_size(self, p, strategy):
        grown = p.with_(actions=p.actions + 1)
        low = reference_rate(strategy, p)
        high = reference_rate(strategy, grown)
        assert high >= low * (1.0 - 1e-9)

    @SETTINGS
    @given(params_strategy, st.sampled_from(MARKOV_STRATEGIES))
    def test_exit_rates_conserve_the_arrival_rate(self, p, strategy):
        # abort_rate already folds in the deadlock exits, so the renewal
        # flux is commits + reconciliations + aborts of either kind
        pred = predict(strategy, p)
        total_exits = (pred.commit_rate + pred.abort_rate
                       + pred.reconciliation_rate)
        assert total_exits == pytest.approx(p.tps * p.nodes, rel=1e-9)

    @SETTINGS
    @given(params_strategy, st.sampled_from(MARKOV_STRATEGIES))
    def test_prediction_is_finite_and_well_formed(self, p, strategy):
        pred = predict(strategy, p)
        assert len(pred.pi) == len(pred.states)
        assert sum(pred.pi) == pytest.approx(1.0, abs=1e-9)
        assert pred.congestion >= 1.0
        for value in (pred.commit_rate, pred.deadlock_rate,
                      pred.wait_rate, pred.reconciliation_rate,
                      pred.abort_rate, pred.sojourn):
            assert math.isfinite(value) and value >= 0.0
        assert set(pred.occupancy()) == set(pred.states)

    def test_feedback_off_keeps_congestion_at_one(self):
        p = ModelParameters(db_size=100, nodes=8, tps=5,
                            actions=4, action_time=0.01)
        pure = predict("eager-group", p, feedback=False)
        fed = predict("eager-group", p, feedback=True)
        assert pure.congestion == 1.0
        assert fed.congestion > 1.0  # dense regime: waiting inflates pool
        assert fed.deadlock_rate > pure.deadlock_rate


class TestLowContentionLimits:
    """Deep in the low-contention regime each chain recovers its equation."""

    _P = ModelParameters(db_size=500_000, nodes=10, tps=5,
                         actions=5, action_time=0.01)

    def test_eager_group_converges_to_eq_12(self):
        assert reference_rate("eager-group", self._P) == pytest.approx(
            eager.total_deadlock_rate(self._P), rel=1e-3
        )

    def test_lazy_group_converges_to_eq_14(self):
        assert reference_rate("lazy-group", self._P) == pytest.approx(
            lazy_group.reconciliation_rate(self._P), rel=1e-3
        )

    def test_lazy_master_converges_to_eq_19(self):
        assert reference_rate("lazy-master", self._P) == pytest.approx(
            lazy_master.deadlock_rate(self._P), rel=1e-3
        )

    def test_eager_master_follows_the_quadratic_master_law(self):
        # the deliberate departure: master-first ordering divides the
        # escalation hazard by the fan-out, so eager-master converges to
        # eq 12 / Nodes (an eq-19-style quadratic), not eq 12 itself
        assert reference_rate("eager-master", self._P) == pytest.approx(
            eager.total_deadlock_rate(self._P) / self._P.nodes, rel=1e-3
        )


class TestChainConfiguration:
    _P = ModelParameters(db_size=1000, nodes=4, tps=5,
                         actions=4, action_time=0.01)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="no markov chain"):
            build_chain("quantum-consensus", self._P)

    def test_reference_rate_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="no markov reference"):
            reference_rate("quantum-consensus", self._P)

    def test_sub_unit_congestion_rejected(self):
        with pytest.raises(ConfigurationError, match="congestion"):
            build_chain("eager-group", self._P, congestion=0.5)

    def test_zero_replication_factor_rejected(self):
        with pytest.raises(ConfigurationError, match="replication factor"):
            predict("eager-group", self._P, k=0)

    def test_unknown_rate_name_rejected(self):
        pred = predict("eager-group", self._P)
        with pytest.raises(ConfigurationError, match="no rate named"):
            pred.rate("teleportation_rate")

    def test_every_strategy_has_a_reference_entry(self):
        assert set(MARKOV_REFERENCE) == set(MARKOV_STRATEGIES)
