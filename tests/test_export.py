"""Tests for JSON result export."""

import json

import pytest

from repro.analytic import ModelParameters
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.export import (
    comparison_to_dict,
    read_json,
    result_to_dict,
    stats_to_dict,
    to_dict,
    write_json,
)
from repro.harness.stats import repeat_experiment


def small_config(**kw):
    kw.setdefault("strategy", "lazy-master")
    kw.setdefault("params", ModelParameters(db_size=50, nodes=2, tps=2,
                                            actions=2, action_time=0.001))
    kw.setdefault("duration", 10.0)
    return ExperimentConfig(**kw)


def test_result_round_trip(tmp_path):
    result = run_experiment(small_config())
    path = write_json(result, tmp_path / "result.json")
    data = read_json(path)
    assert data["config"]["strategy"] == "lazy-master"
    assert data["config"]["params"]["db_size"] == 50
    assert data["rates"]["commit_rate"] > 0
    assert data["counters"]["commits"] > 0
    assert data["divergence"] == 0


def test_export_is_valid_json_text(tmp_path):
    result = run_experiment(small_config())
    path = write_json(result, tmp_path / "nested" / "out.json")
    text = path.read_text()
    json.loads(text)  # parses
    assert text.endswith("\n")


def test_stats_export(tmp_path):
    stats = repeat_experiment(small_config(), seeds=[1, 2])
    data = stats_to_dict(stats)
    assert data["seeds"] == [1, 2]
    assert len(data["rates"]["commit_rate"]["samples"]) == 2
    write_json(stats, tmp_path / "stats.json")


def test_comparison_export():
    from repro.analytic import lazy_master as lm_eqs
    from repro.harness import analytic_vs_simulated

    rows = analytic_vs_simulated(
        strategy="lazy-master",
        base_params=ModelParameters(db_size=50, nodes=1, tps=2, actions=2,
                                    action_time=0.001),
        parameter="nodes",
        values=[1, 2],
        analytic_fn=lm_eqs.deadlock_rate,
        measure=lambda r: r.deadlock_rate,
        duration=10.0,
    )
    data = comparison_to_dict(rows, "nodes", "deadlocks/s")
    assert len(data["points"]) == 2
    assert data["points"][1]["x"] == 2.0


def test_to_dict_dispatch():
    result = run_experiment(small_config())
    assert to_dict(result)["divergence"] == 0
    assert to_dict({"x": 1}) == {"x": 1}
    with pytest.raises(TypeError):
        to_dict(42)


def test_acceptance_and_rule_names_recorded():
    from repro.core.acceptance import NonNegativeOutputs

    config = small_config(strategy="two-tier",
                          acceptance=NonNegativeOutputs())
    data = result_to_dict(run_experiment(config))
    assert data["config"]["acceptance"] == "non-negative"
