"""Engine dispatch profiler: bucketing, wiring, and reporting."""

import pytest

from repro.analytic import ModelParameters
from repro.exceptions import ConfigurationError
from repro.harness import ExperimentConfig, build_system
from repro.obs.profiler import Profiler, bucket_name
from repro.sim.engine import Engine
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import uniform_update_profile


def test_bucket_name_strips_id_suffixes():
    engine = Engine()

    def job():
        yield engine.timeout(1.0)

    proc = engine.process(job(), name="handler-replica-update-123")
    assert bucket_name(engine._step, (proc, None, None)) == \
        "handler-replica-update"
    proc2 = engine.process(job(), name="workload@3")
    assert bucket_name(engine._step, (proc2, None, None)) == "workload"
    engine.run()


def test_bucket_name_plain_callback():
    def tick():
        pass

    assert "tick" in bucket_name(tick, ())


def test_install_uninstall():
    engine = Engine()
    profiler = Profiler().install(engine)
    assert engine.profiler is profiler
    with pytest.raises(ConfigurationError):
        Profiler().install(engine)
    profiler.uninstall()
    assert engine.profiler is None
    # idempotent
    profiler.uninstall()


def test_profile_of_a_real_run():
    config = ExperimentConfig(
        strategy="lazy-group",
        params=ModelParameters(
            db_size=60, nodes=3, tps=5, actions=3, action_time=0.002
        ),
        duration=10.0,
        seed=0,
    )
    system = build_system(config)
    profiler = Profiler().install(system.engine)
    profile = uniform_update_profile(actions=3, db_size=60)
    WorkloadGenerator(system, profile, tps=5).start(10.0)
    system.run()

    assert profiler.total_dispatches > 0
    assert profiler.total_seconds >= 0
    assert sum(b.calls for b in profiler.buckets.values()) == \
        profiler.total_dispatches
    # id-suffixed handler processes collapsed into stable buckets
    assert not any(name[-1].isdigit() and "-" in name
                   for name in profiler.buckets)

    table = profiler.table(top=5)
    assert "engine hot spots" in table
    assert "bucket" in table

    doc = profiler.to_dict()
    assert doc["total_dispatches"] == profiler.total_dispatches
    assert doc["buckets"][0]["seconds"] == max(
        b["seconds"] for b in doc["buckets"]
    )


def test_dispatch_times_even_when_callback_raises():
    profiler = Profiler()

    def boom():
        raise ValueError("x")

    with pytest.raises(ValueError):
        profiler.dispatch(boom, ())
    assert profiler.total_dispatches == 1
    assert "boom" in next(iter(profiler.buckets))


def test_hot_spots_ranking():
    slow_clock = iter(range(100)).__next__

    profiler = Profiler(clock=lambda: float(slow_clock()))
    profiler.dispatch(lambda: None, ())  # 1 tick
    assert profiler.hot_spots()[0].calls == 1
