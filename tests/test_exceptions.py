"""Tests for the exception hierarchy."""

import pytest

from repro import exceptions as exc


def test_hierarchy_roots():
    assert issubclass(exc.SimulationError, exc.ReproError)
    assert issubclass(exc.TransactionError, exc.ReproError)
    assert issubclass(exc.ReplicationError, exc.ReproError)
    assert issubclass(exc.ConfigurationError, exc.ReproError)


def test_deadlock_is_a_transaction_abort():
    assert issubclass(exc.DeadlockAbort, exc.TransactionAborted)
    error = exc.DeadlockAbort()
    assert error.reason == "deadlock"


def test_transaction_aborted_reason():
    error = exc.TransactionAborted("boom", reason="acceptance")
    assert error.reason == "acceptance"
    assert "boom" in str(error)


def test_reconciliation_required_carries_context():
    from repro.storage.versioning import Timestamp

    error = exc.ReconciliationRequired(7, Timestamp(1, 0), Timestamp(2, 1))
    assert error.oid == 7
    assert error.expected_ts == Timestamp(1, 0)
    assert error.found_ts == Timestamp(2, 1)
    assert "7" in str(error)


def test_acceptance_failure_message():
    error = exc.AcceptanceFailure("non-negative", detail="balance -5")
    assert error.criterion_name == "non-negative"
    assert "balance -5" in str(error)


def test_catching_the_root_catches_everything():
    for error_cls in [
        exc.SimulationError,
        exc.ProcessKilled,
        exc.DeadlockAbort,
        exc.LockError,
        exc.InvalidStateError,
        exc.MasterUnavailableError,
        exc.ScopeViolationError,
        exc.DisconnectedError,
        exc.ConfigurationError,
    ]:
        with pytest.raises(exc.ReproError):
            raise error_cls("x")
