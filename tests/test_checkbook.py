"""Tests for the checkbook scenario — the paper's running example."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workload.checkbook import CheckbookScenario


def test_the_papers_story():
    """$1,000 account; you and your spouse write checks totalling $2,000 —
    lazy replication would allow both, the bank (two-tier) bounces one."""
    s = CheckbookScenario(accounts=1, holders=2, initial_balance=1000.0)
    s.disconnect_all()
    s.write_check(0, 0, 1000.0)
    s.write_check(1, 0, 1000.0)
    s.system.run()
    # both spouses see their own tentative balance at zero
    assert s.book_balance(0, 0) == 0.0
    assert s.book_balance(1, 0) == 0.0
    s.clear_checks()
    # the bank honored exactly one check
    assert s.bank_balance(0) == 0.0
    bounced = s.bounced_checks()
    assert len(bounced) == 1
    assert s.system.metrics.tentative_accepted == 1
    assert s.system.metrics.tentative_rejected == 1
    assert s.system.base_converged()


def test_within_funds_checks_all_clear():
    s = CheckbookScenario(accounts=1, holders=2, initial_balance=1000.0)
    s.disconnect_all()
    s.write_check(0, 0, 300.0)
    s.write_check(1, 0, 400.0)
    s.system.run()
    s.clear_checks()
    assert s.bank_balance(0) == 300.0
    assert s.bounced_checks() == {}


def test_deposit_then_check_in_order():
    s = CheckbookScenario(accounts=1, holders=1, initial_balance=0.0)
    s.disconnect_all()
    s.deposit(0, 0, 500.0)
    s.write_check(0, 0, 200.0)
    s.system.run()
    s.clear_checks()
    assert s.bank_balance(0) == 300.0
    assert s.bounced_checks() == {}


def test_check_against_empty_account_bounces():
    s = CheckbookScenario(accounts=1, holders=1, initial_balance=0.0)
    s.disconnect_all()
    s.write_check(0, 0, 10.0)
    s.system.run()
    s.clear_checks()
    assert s.bank_balance(0) == 0.0
    assert 0 in s.bounced_checks()


def test_books_resync_after_clearing():
    s = CheckbookScenario(accounts=1, holders=2, initial_balance=100.0)
    s.disconnect_all()
    s.write_check(0, 0, 80.0)
    s.write_check(1, 0, 70.0)
    s.system.run()
    s.clear_checks()
    # after the exchange, both checkbooks show the bank's (master) balance
    assert s.book_balance(0, 0) == s.bank_balance(0)
    assert s.book_balance(1, 0) == s.bank_balance(0)


def test_multiple_accounts_are_independent():
    s = CheckbookScenario(accounts=3, holders=2, initial_balance=100.0)
    s.disconnect_all()
    s.write_check(0, 0, 100.0)
    s.write_check(1, 1, 100.0)
    s.system.run()
    s.clear_checks()
    assert s.bank_balance(0) == 0.0
    assert s.bank_balance(1) == 0.0
    assert s.bank_balance(2) == 100.0
    assert s.bounced_checks() == {}


def test_validation():
    with pytest.raises(ConfigurationError):
        CheckbookScenario(accounts=0)
    s = CheckbookScenario()
    with pytest.raises(ConfigurationError):
        s.write_check(0, 0, -5.0)
    with pytest.raises(ConfigurationError):
        s.deposit(0, 0, 0.0)
