"""Tests for history recording and conflict-serializability checking."""

import pytest

from repro.verify import ConflictGraph, History
from repro.replication import SystemSpec


class TestHistoryRecording:
    def test_events_in_order(self):
        h = History()
        h.record_write(0, 1, 7)
        h.record_read(0, 2, 7)
        assert len(h) == 2
        assert [e.kind for e in h.events] == ["w", "r"]
        assert h.events[0].seq < h.events[1].seq

    def test_committed_filtering(self):
        h = History()
        h.record_write(0, 1, 7)
        h.record_write(0, 2, 7)
        h.mark_committed(1)
        assert [e.txn_id for e in h.committed_events()] == [1]


class TestConflictGraph:
    def test_serial_history_is_serializable(self):
        h = History()
        for txn in [1, 2, 3]:
            h.record_read(0, txn, 5)
            h.record_write(0, txn, 5)
            h.mark_committed(txn)
        graph = h.conflict_graph()
        assert graph.is_serializable()
        assert graph.serial_order() == [1, 2, 3]

    def test_reads_do_not_conflict(self):
        h = History()
        h.record_read(0, 1, 5)
        h.record_read(0, 2, 5)
        h.record_read(0, 1, 5)
        h.mark_committed(1)
        h.mark_committed(2)
        graph = h.conflict_graph()
        assert graph.edge_count() == 0
        assert graph.is_serializable()

    def test_write_read_conflict_creates_edge(self):
        h = History()
        h.record_write(0, 1, 5)
        h.record_read(0, 2, 5)
        h.mark_committed(1)
        h.mark_committed(2)
        graph = h.conflict_graph()
        assert 2 in graph.edges.get(1, set())

    def test_classic_anomaly_is_cyclic(self):
        # T1 and T2 each read-then-write x and y interleaved: lost update
        h = History()
        h.record_read(0, 1, 0)   # r1(x)
        h.record_read(0, 2, 0)   # r2(x)
        h.record_write(0, 1, 0)  # w1(x): edge 2 -> 1 (r2 before w1)
        h.record_write(0, 2, 1)  # and on y ...
        h.record_read(0, 1, 1)
        # r1(y) after w2(y): edge 2 -> 1; need opposite edge: w2(x) after w1(x)
        h.record_write(0, 2, 0)  # w2(x): edge 1 -> 2
        h.mark_committed(1)
        h.mark_committed(2)
        graph = h.conflict_graph()
        assert not graph.is_serializable()
        cycle = graph.find_cycle()
        assert set(cycle) == {1, 2}
        with pytest.raises(ValueError):
            graph.serial_order()

    def test_replica_divergent_orders_are_cyclic(self):
        """The lazy-group anomaly: node A applies T1 then T2, node B applies
        T2 then T1."""
        h = History()
        h.record_write(0, 1, 9)  # node 0: T1 first
        h.record_write(0, 2, 9)
        h.record_write(1, 2, 9)  # node 1: T2 first
        h.record_write(1, 1, 9)
        h.mark_committed(1)
        h.mark_committed(2)
        assert not h.conflict_graph().is_serializable()

    def test_same_order_at_all_replicas_is_serializable(self):
        h = History()
        for node in [0, 1, 2]:
            h.record_write(node, 1, 9)
            h.record_write(node, 2, 9)
        h.mark_committed(1)
        h.mark_committed(2)
        graph = h.conflict_graph()
        assert graph.is_serializable()
        assert graph.serial_order() == [1, 2]

    def test_uncommitted_transactions_cannot_create_anomalies(self):
        h = History()
        h.record_write(0, 1, 9)
        h.record_write(0, 2, 9)
        h.record_write(1, 2, 9)
        h.record_write(1, 1, 9)
        h.mark_committed(1)  # 2 aborted: its writes were undone
        assert h.conflict_graph().is_serializable()

    def test_as_networkx_roundtrip(self):
        graph = ConflictGraph(nodes={1, 2}, edges={1: {2}})
        nx_graph = graph.as_networkx()
        assert set(nx_graph.nodes) == {1, 2}
        assert list(nx_graph.edges) == [(1, 2)]


class TestSystemHistories:
    """The paper's claims about the schedules each strategy produces."""

    def _drive(self, system, writers=3, per_writer=4):
        from repro.txn.ops import IncrementOp

        for origin in range(min(writers, system.num_nodes)):
            for i in range(per_writer):
                system.submit(
                    origin, [IncrementOp((origin + i) % 4, 1), IncrementOp(3, 1)]
                )
        system.run()

    def test_eager_group_histories_are_serializable(self):
        """'Eager replication gives serializable execution — there are no
        concurrency anomalies.'"""
        from repro.replication.eager_group import EagerGroupSystem

        for seed in range(3):
            system = EagerGroupSystem(
                SystemSpec(num_nodes=3, db_size=4, action_time=0.002,
                           seed=seed, record_history=True,
                           retry_deadlocks=True),
            )
            self._drive(system)
            graph = system.history.conflict_graph()
            assert graph.is_serializable(), graph.find_cycle()

    def test_eager_master_histories_are_serializable(self):
        from repro.replication.eager_master import EagerMasterSystem

        system = EagerMasterSystem(
            SystemSpec(num_nodes=3, db_size=4, action_time=0.002, seed=1,
                       record_history=True, retry_deadlocks=True),
        )
        self._drive(system)
        assert system.history.conflict_graph().is_serializable()

    def test_lazy_master_histories_are_serializable(self):
        """Master serialization orders all writes; slave installs replay
        them in timestamp order, so the one-copy schedule stays clean."""
        from repro.replication.lazy_master import LazyMasterSystem

        system = LazyMasterSystem(
            SystemSpec(num_nodes=3, db_size=4, action_time=0.002, seed=1,
                       record_history=True, retry_deadlocks=True),
        )
        self._drive(system)
        system.run()
        assert system.history.conflict_graph().is_serializable()

    def test_lazy_group_race_produces_anomaly(self):
        """Racing update-anywhere writes install in different orders at
        different replicas — a concrete non-serializable schedule."""
        from repro.replication.lazy_group import LazyGroupSystem
        from repro.txn.ops import WriteOp

        found_anomaly = False
        for seed in range(5):
            system = LazyGroupSystem(
                SystemSpec(num_nodes=3, db_size=2, action_time=0.001,
                           message_delay=0.5, seed=seed, record_history=True),
            )
            system.submit(0, [WriteOp(0, 111)])
            system.submit(1, [WriteOp(0, 222)])
            system.submit(2, [WriteOp(0, 333)])
            system.run()
            if not system.history.conflict_graph().is_serializable():
                found_anomaly = True
                break
        assert found_anomaly, (
            "racing lazy-group writes should produce a precedence cycle"
        )
