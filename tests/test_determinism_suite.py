"""Determinism regression suite: fixed seed ⇒ byte-identical results.

Every strategy runs twice at a fixed seed, with and without fault
injection, and each run's fingerprint — the full metrics dict, divergence,
end time, and a SHA-256 over the formatted trace lines — must match (a)
the same run repeated in-process, and (b) the committed golden captured
before the kernel hot-path refactor.  Any change to event ordering,
sequence-number consumption, or lock promotion order shows up here first.

Regenerate the goldens (only after an *intentional* behaviour change)::

    PYTHONPATH=src python -m tests.determinism_helpers --write
"""

import pytest

from tests.determinism_helpers import case_names, fingerprint, load_golden


@pytest.fixture(scope="module")
def golden():
    data = load_golden()
    assert data, "tests/data/determinism_golden.json is missing or empty"
    return data


@pytest.mark.parametrize("case", case_names())
def test_fixed_seed_run_is_reproducible_and_matches_golden(case, golden):
    first = fingerprint(case)
    second = fingerprint(case)
    assert first == second, f"{case}: same-process repeat diverged"
    assert case in golden, f"{case}: no committed golden (regenerate goldens)"
    assert first == golden[case], (
        f"{case}: run diverged from the pre-refactor golden — the kernel "
        "changed observable behaviour, not just speed"
    )


def test_golden_covers_every_canonical_case(golden):
    assert sorted(golden) == sorted(case_names())
