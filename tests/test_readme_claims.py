"""The README's code snippets, executed.

Documentation that drifts from the code is worse than none; these tests run
the README quickstart claims verbatim so the docs stay honest.
"""

import pytest
from repro.replication import SystemSpec


def test_headline_three_liner():
    from repro import ModelParameters, eager

    p = ModelParameters(db_size=10_000, nodes=1, tps=10, actions=5,
                        action_time=0.01)
    ratio = (
        eager.total_deadlock_rate(p.with_(nodes=10))
        / eager.total_deadlock_rate(p)
    )
    assert ratio == pytest.approx(1000.0)


def test_checkbook_quickstart_snippet():
    from repro import TwoTierSystem, IncrementOp, NonNegativeOutputs

    system = TwoTierSystem(
        SystemSpec(num_nodes=3, db_size=1, initial_value=1000),
        num_base=1,
    )
    you, spouse = system.mobile(1), system.mobile(2)
    system.disconnect_mobile(1)
    system.disconnect_mobile(2)

    you.submit_tentative([IncrementOp(0, -800)], NonNegativeOutputs())
    spouse.submit_tentative([IncrementOp(0, -700)], NonNegativeOutputs())
    system.run()

    system.reconnect_mobile(1)
    system.run()
    assert system.nodes[0].store.value(0) == 200  # check clears
    system.reconnect_mobile(2)
    system.run()
    # the second check bounced (would be -500)
    assert system.nodes[0].store.value(0) == 200
    assert system.metrics.tentative_rejected == 1
    assert system.base_divergence() == 0  # no system delusion, ever


def test_package_init_quickstart_snippet():
    from repro import (
        IncrementOp,
        ModelParameters,
        NonNegativeOutputs,
        TwoTierSystem,
        eager,
    )

    p = ModelParameters(db_size=10_000, nodes=1, tps=10, actions=5,
                        action_time=0.01)
    assert eager.total_deadlock_rate(p.with_(nodes=10)) / (
        eager.total_deadlock_rate(p)
    ) == pytest.approx(1000.0)

    system = TwoTierSystem(SystemSpec(num_nodes=3, db_size=100), num_base=2)
    mobile = system.mobile(2)
    system.disconnect_mobile(2)
    mobile.submit_tentative([IncrementOp(7, -50)], NonNegativeOutputs())
    system.run()
    system.reconnect_mobile(2)
    system.run()
    assert system.metrics.tentative_rejected == 1  # initial value is 0


def test_all_public_names_importable():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"
