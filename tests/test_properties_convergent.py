"""Property-based tests for the convergent (section 6) substrate.

The convergence property is exactly the kind of claim hypothesis is built
for: *any* sequence of updates at *any* replicas, synchronized in *any*
order, must end in identical states — with appends and increments losing
nothing, ever.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication.convergent import (
    ConvergentReplica,
    diverged_objects,
    exchange,
    fully_sync,
)

# one update instruction: (replica, kind, oid, value)
update_strategy = st.tuples(
    st.integers(0, 3),
    st.sampled_from(["replace", "append", "increment"]),
    st.integers(0, 2),
    st.integers(-50, 50),
)


def apply_updates(replicas, updates):
    for replica_index, kind, oid, value in updates:
        replica = replicas[replica_index % len(replicas)]
        if kind == "replace":
            replica.replace(oid, value)
        elif kind == "append":
            replica.append(oid, value)
        else:
            replica.increment(oid, value)


@settings(max_examples=60, deadline=None)
@given(st.lists(update_strategy, max_size=25), st.integers(2, 4))
def test_any_update_mix_converges(updates, n_replicas):
    replicas = [ConvergentReplica(i, 3) for i in range(n_replicas)]
    apply_updates(replicas, updates)
    fully_sync(replicas)
    assert diverged_objects(replicas) == 0


@settings(max_examples=40, deadline=None)
@given(st.lists(update_strategy, max_size=20), st.randoms(use_true_random=False))
def test_sync_order_does_not_matter(updates, rng):
    def run(pair_order):
        replicas = [ConvergentReplica(i, 3) for i in range(3)]
        apply_updates(replicas, updates)
        for a, b in pair_order:
            exchange(replicas[a], replicas[b])
        fully_sync(replicas)
        return [r.snapshot() for r in replicas]

    pairs = list(itertools.combinations(range(3), 2))
    shuffled = list(pairs)
    rng.shuffle(shuffled)
    assert run(pairs) == run(shuffled)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2), st.integers(-20, 20)),
                min_size=1, max_size=20))
def test_increments_always_sum_exactly(increments):
    replicas = [ConvergentReplica(i, 1) for i in range(3)]
    for replica_index, delta in increments:
        replicas[replica_index].increment(0, delta)
    fully_sync(replicas)
    expected = sum(delta for _, delta in increments)
    assert all(r.value(0) == expected for r in replicas)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 100)),
                min_size=1, max_size=15))
def test_appends_never_lose_notes(appends):
    replicas = [ConvergentReplica(i, 1) for i in range(3)]
    for replica_index, body in appends:
        replicas[replica_index].append(0, body)
    fully_sync(replicas)
    for replica in replicas:
        assert len(replica.notes(0)) == len(appends)


@settings(max_examples=40, deadline=None)
@given(st.lists(update_strategy, max_size=20))
def test_sync_is_idempotent_after_convergence(updates):
    replicas = [ConvergentReplica(i, 3) for i in range(3)]
    apply_updates(replicas, updates)
    fully_sync(replicas)
    snapshots = [r.snapshot() for r in replicas]
    fully_sync(replicas)
    assert [r.snapshot() for r in replicas] == snapshots


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 1000)),
                min_size=2, max_size=10))
def test_replace_keeps_exactly_one_committed_value(replaces):
    """Whatever is lost, the survivor must be one of the written values."""
    replicas = [ConvergentReplica(i, 1) for i in range(3)]
    written = []
    for replica_index, value in replaces:
        replicas[replica_index].replace(0, value)
        written.append(value)
    fully_sync(replicas)
    final = replicas[0].value(0)
    assert final in written
    assert diverged_objects(replicas) == 0
