"""Directory placement: spec grammar, map construction, migration, parity.

The :class:`~repro.placement.DirectoryPlacement` contract:

* deterministic, seeded map construction — the same spec bound twice (or in
  two processes) yields identical replica sets, and the seed reshuffles
  them without touching workload randomness;
* locality grouping co-locates contiguous object-id ranges on one replica
  set (hash grouping scatters them — the ablation baseline);
* :meth:`~repro.placement.directory.BoundDirectory.move` rewrites a single
  object's replica set live, and ``ReplicatedSystem.migrate`` pairs that
  with a record transfer through the normal network path;
* lazy stores are observationally identical to eager ones — the parity
  class pins byte-identical fingerprints between ``eager_stores=True`` and
  the lazy default.
"""

import hashlib

import pytest

from repro.analytic.parameters import ModelParameters
from repro.exceptions import ConfigurationError, InvalidStateError
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.experiment import STRATEGIES
from repro.network.message import reset_message_ids
from repro.placement import (
    DirectoryPlacement,
    FullReplication,
    HashShardPlacement,
    Placement,
)
from repro.replication import LazyGroupSystem, LazyMasterSystem, SystemSpec
from repro.sim.tracing import Tracer
from repro.txn.ops import WriteOp
from repro.txn.transaction import reset_txn_ids


# --------------------------------------------------------------------- #
# spec strings and serialisation
# --------------------------------------------------------------------- #


def test_from_spec_dir_variants():
    assert Placement.from_spec("dir") == DirectoryPlacement()
    assert Placement.from_spec("dir:k=2") == DirectoryPlacement(
        replication_factor=2
    )
    assert Placement.from_spec(
        "dir:k=2,shards=7,group=hash,seed=9"
    ) == DirectoryPlacement(
        replication_factor=2, shards=7, grouping="hash", placement_seed=9
    )
    # long-form keys parse too
    assert Placement.from_spec(
        "dir:replication_factor=4,grouping=locality,placement_seed=1"
    ) == DirectoryPlacement(replication_factor=4, placement_seed=1)


def test_spec_round_trips_through_string_and_dict():
    for spec in (
        DirectoryPlacement(),
        DirectoryPlacement(replication_factor=2),
        DirectoryPlacement(replication_factor=3, shards=16),
        DirectoryPlacement(replication_factor=2, grouping="hash",
                           placement_seed=5),
    ):
        assert Placement.from_spec(spec.spec()) == spec
        assert Placement.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("bad", [
    "dir:k=0",
    "dir:k=x",
    "dir:shards=-1",
    "dir:group=wat",
    "dir:seed=-1",
    "dir:wat=3",
])
def test_bad_specs_are_rejected(bad):
    with pytest.raises(ConfigurationError):
        Placement.from_spec(bad)


# --------------------------------------------------------------------- #
# map construction: determinism, structure, clamping
# --------------------------------------------------------------------- #


def test_binding_is_deterministic_and_seed_sensitive():
    a = DirectoryPlacement(replication_factor=3).bind(10, 1000)
    b = DirectoryPlacement(replication_factor=3).bind(10, 1000)
    for oid in range(1000):
        assert a.replicas(oid) == b.replicas(oid)
    reseeded = DirectoryPlacement(
        replication_factor=3, placement_seed=1
    ).bind(10, 1000)
    assert any(
        a.replicas(oid) != reseeded.replicas(oid) for oid in range(1000)
    )


def test_replicas_are_distinct_master_first():
    bound = DirectoryPlacement(replication_factor=3).bind(10, 500)
    for oid in range(500):
        replicas = bound.replicas(oid)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3
        assert all(0 <= node < 10 for node in replicas)
        assert replicas[0] == bound.master(oid)
        for node in replicas:
            assert bound.is_replica(oid, node)


def test_rotation_spreads_mastership_beyond_stride_residues():
    # shard s starts at s*k mod N; with k=2, N=10 the un-rotated starts
    # visit only 5 ring slots — the seeded window rotation must spread
    # masters wider than that
    bound = DirectoryPlacement(replication_factor=2).bind(10, 1000)
    masters = {bound.master(oid) for oid in range(1000)}
    assert len(masters) > 5


def test_factor_capped_at_node_count_degrades_to_full():
    bound = DirectoryPlacement(replication_factor=9).bind(3, 50)
    assert bound.is_full
    assert bound.replication_factor == 3
    assert bound.objects_at(1) is None


def test_shard_count_defaults_and_clamps():
    # default: min(num_nodes, db_size)
    assert DirectoryPlacement().bind(4, 1000).shard_count == 4
    assert DirectoryPlacement().bind(4000, 100).shard_count == 100
    # explicit requests clamp into [1, db_size]
    assert DirectoryPlacement(shards=500).bind(4, 10).shard_count == 10
    assert DirectoryPlacement(shards=7).bind(4, 1000).shard_count == 7


def test_locality_groups_contiguous_ids_hash_scatters_them():
    locality = DirectoryPlacement(replication_factor=2).bind(10, 1000)
    hashed = DirectoryPlacement(
        replication_factor=2, grouping="hash"
    ).bind(10, 1000)
    # 10 shards over 1000 ids: the first 100 ids are one locality shard
    assert len({locality.replicas(oid) for oid in range(100)}) == 1
    assert len({hashed.replicas(oid) for oid in range(100)}) > 1
    # both groupings cover every object with exactly k replicas
    for bound in (locality, hashed):
        assert sum(bound.resident_counts()) == 2 * 1000


def test_resident_counts_match_objects_at():
    for grouping in ("locality", "hash"):
        bound = DirectoryPlacement(
            replication_factor=3, grouping=grouping
        ).bind(7, 200)
        counts = bound.resident_counts()
        assert counts == [
            len(bound.objects_at(node)) for node in range(7)
        ]
        assert sum(counts) == 3 * 200


# --------------------------------------------------------------------- #
# move(): the directory rewrite
# --------------------------------------------------------------------- #


def test_move_replaces_src_with_dst_preserving_master():
    bound = DirectoryPlacement(replication_factor=3).bind(8, 100)
    oid = 17
    before = bound.replicas(oid)
    src = before[1]  # a non-master member
    dst = next(n for n in range(8) if n not in before)
    after = bound.move(oid, src, dst)
    assert bound.replicas(oid) == after
    assert after[0] == before[0]  # master unchanged
    assert src not in after and dst in after
    assert bound.moved == 1
    # only the moved object changed
    assert all(
        bound.replicas(other) == DirectoryPlacement(
            replication_factor=3
        ).bind(8, 100).replicas(other)
        for other in range(100) if other != oid
    )


def test_moving_the_master_transfers_mastership():
    bound = DirectoryPlacement(replication_factor=3).bind(8, 100)
    oid = 40
    src = bound.master(oid)
    dst = next(n for n in range(8) if not bound.is_replica(oid, n))
    bound.move(oid, src, dst)
    assert bound.master(oid) == dst


def test_move_updates_residency_bookkeeping():
    bound = DirectoryPlacement(replication_factor=2).bind(6, 120)
    before = bound.resident_counts()
    oid = 60
    src = bound.replicas(oid)[0]
    dst = next(n for n in range(6) if not bound.is_replica(oid, n))
    bound.move(oid, src, dst)
    after = bound.resident_counts()
    assert after[src] == before[src] - 1
    assert after[dst] == before[dst] + 1
    assert sum(after) == sum(before)
    assert oid in bound.objects_at(dst)
    assert oid not in bound.objects_at(src)


def test_move_validates_endpoints():
    bound = DirectoryPlacement(replication_factor=2).bind(6, 50)
    oid = 10
    replicas = bound.replicas(oid)
    outsider = next(n for n in range(6) if n not in replicas)
    with pytest.raises(ConfigurationError):
        bound.move(50, replicas[0], outsider)  # oid out of range
    with pytest.raises(ConfigurationError):
        bound.move(oid, replicas[0], 6)  # dst out of range
    with pytest.raises(ConfigurationError):
        bound.move(oid, outsider, replicas[0])  # src does not hold oid
    with pytest.raises(ConfigurationError):
        bound.move(oid, replicas[0], replicas[1])  # dst already holds oid
    assert bound.moved == 0


def test_computed_placements_refuse_to_move():
    with pytest.raises(ConfigurationError):
        FullReplication().bind(4, 50).move(0, 0, 1)
    with pytest.raises(ConfigurationError):
        HashShardPlacement(replication_factor=2).bind(4, 50).move(0, 0, 1)


# --------------------------------------------------------------------- #
# live migration through the system layer
# --------------------------------------------------------------------- #


def _dir_system(cls=LazyGroupSystem, **overrides):
    kwargs = dict(
        num_nodes=6,
        db_size=60,
        action_time=0.001,
        message_delay=0.002,
        seed=3,
        placement=Placement.from_spec("dir:k=2"),
    )
    kwargs.update(overrides)
    return cls(SystemSpec(**kwargs))


def test_migrate_transfers_the_record_and_evicts_the_source():
    system = _dir_system()
    placement = system.placement
    oid = 7
    master = placement.master(oid)
    src = placement.replicas(oid)[1]
    dst = next(
        n for n in range(system.num_nodes)
        if not placement.is_replica(oid, n)
    )
    system.submit(master, [WriteOp(oid, 777)])
    system.run()
    system.migrate(oid, src, dst)
    system.run()
    assert placement.replicas(oid) == (master, dst)
    assert system.nodes[dst].store.peek(oid) == 777
    # the source no longer holds (or materialises) the object
    assert oid not in system.nodes[src].store
    assert system.divergence() == 0
    assert system.metrics.as_dict()["migrations"] == 1
    assert placement.moved == 1


def test_writes_route_to_the_new_replica_set_after_migration():
    system = _dir_system()
    placement = system.placement
    oid = 30
    master = placement.master(oid)
    src = placement.replicas(oid)[1]
    dst = next(
        n for n in range(system.num_nodes)
        if not placement.is_replica(oid, n)
    )
    system.migrate(oid, src, dst)
    system.run()
    system.submit(master, [WriteOp(oid, 1234)])
    system.run()
    assert system.nodes[dst].store.peek(oid) == 1234
    assert system.nodes[master].store.peek(oid) == 1234
    assert oid not in system.nodes[src].store
    assert system.divergence() == 0


def test_migrating_the_master_rebinds_ownership():
    system = _dir_system(cls=LazyMasterSystem)
    placement = system.placement
    oid = 12
    src = placement.master(oid)
    dst = next(
        n for n in range(system.num_nodes)
        if not placement.is_replica(oid, n)
    )
    assert system.ownership[oid] == src
    system.migrate(oid, src, dst)
    system.run()
    assert system.ownership[oid] == dst
    # writes keep committing through the new owner
    origin = (dst + 1) % system.num_nodes
    system.submit(origin, [WriteOp(oid, 55)])
    system.run()
    assert system.nodes[dst].store.peek(oid) == 55
    assert system.divergence() == 0


def test_migrate_rejects_crashed_endpoints_and_computed_placements():
    system = _dir_system()
    placement = system.placement
    oid = 3
    src = placement.replicas(oid)[1]
    dst = next(
        n for n in range(system.num_nodes)
        if not placement.is_replica(oid, n)
    )
    system.crash_node(src)
    with pytest.raises(InvalidStateError):
        system.migrate(oid, src, dst)
    system.recover_node(src)
    with pytest.raises(ConfigurationError):
        system.migrate(oid, src, system.num_nodes)  # dst out of range
    hashed = _dir_system(placement=Placement.from_spec("hash:k=2"))
    with pytest.raises(ConfigurationError):
        hashed.migrate(0, hashed.placement.master(0), 5)


# --------------------------------------------------------------------- #
# every strategy runs (and converges) under a directory placement
# --------------------------------------------------------------------- #


_PARAMS = ModelParameters(
    db_size=60, nodes=5, tps=4.0, actions=3, action_time=0.005,
    message_delay=0.002,
)


def _dir_config(strategy, placement_spec="dir:k=3", **overrides):
    if strategy == "two-tier":
        params = _PARAMS.with_(nodes=2)
        num_base = 4
    else:
        params = _PARAMS
        num_base = 1
    kwargs = dict(
        strategy=strategy,
        params=params,
        duration=8.0,
        seed=11,
        num_base=num_base,
        placement=Placement.from_spec(placement_spec),
    )
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_every_strategy_converges_under_directory_placement(strategy):
    result = run_experiment(_dir_config(strategy))
    assert result.metrics.commits > 0
    assert result.extra["oracle_ok"] is True
    resident = result.extra["resident_objects"]
    assert resident["replication_factor"] == 3
    # placement scope: 3 copies per object across the placed tier, plus a
    # full replica per out-of-scope mobile under two-tier
    placed_total = 3 * 60
    mobiles = 2 if strategy == "two-tier" else 0
    assert resident["total"] == placed_total + mobiles * 60
    # lazy stores: the run only materialises what it touched
    assert resident["materialized_total"] <= resident["total"]


# --------------------------------------------------------------------- #
# eager/lazy store parity: byte-identical fingerprints
# --------------------------------------------------------------------- #


def _fingerprint(strategy, placement_spec, eager):
    """Run one config and reduce it to a comparable record.

    Deliberately excludes the ``materialized_*`` extras — those differ
    between eager and lazy stores *by design*; everything observable
    (metrics, divergence, clock, the full trace) must not.
    """
    reset_txn_ids()
    reset_message_ids()
    tracer = Tracer(limit=1_000_000)
    config = (
        _dir_config(strategy, placement_spec,
                    eager_stores=eager, tracer=tracer)
        if placement_spec is not None
        else _dir_config(strategy, eager_stores=eager, tracer=tracer,
                         placement=None)
    )
    result = run_experiment(config)
    trace_lines = "\n".join(e.format() for e in tracer.events())
    resident = result.extra["resident_objects"]
    return {
        "metrics": dict(sorted(result.metrics.as_dict().items())),
        "divergence": result.divergence,
        "end_time": round(result.end_time, 9),
        "trace_events": len(tracer),
        "trace_sha256": hashlib.sha256(trace_lines.encode()).hexdigest(),
        "oracle_ok": result.extra["oracle_ok"],
        "resident_max": resident["max"],
        "resident_total": resident["total"],
    }


@pytest.mark.parametrize("strategy,placement_spec", [
    ("lazy-group", "dir:k=2"),
    ("eager-group", "dir:k=3,group=hash"),
    ("eager-master", "dir:k=2,shards=7,seed=5"),
    ("lazy-master", "hash:k=3"),
    ("lazy-group", None),  # full replication: the flag must be a no-op
])
def test_eager_and_lazy_stores_are_observationally_identical(
    strategy, placement_spec
):
    lazy = _fingerprint(strategy, placement_spec, eager=False)
    eager = _fingerprint(strategy, placement_spec, eager=True)
    assert lazy == eager
    assert lazy["oracle_ok"] is True


def test_lazy_stores_materialise_less_than_eager():
    lazy = run_experiment(_dir_config("lazy-group", "dir:k=2"))
    eager = run_experiment(
        _dir_config("lazy-group", "dir:k=2", eager_stores=True)
    )
    lazy_resident = lazy.extra["resident_objects"]
    eager_resident = eager.extra["resident_objects"]
    # eager materialises its full nominal shard up front
    assert eager_resident["materialized_total"] == eager_resident["total"]
    # lazy only what the run touched — never more than nominal
    assert lazy_resident["materialized_total"] <= lazy_resident["total"]
    # the nominal view is identical either way
    assert lazy_resident["total"] == eager_resident["total"]
    assert lazy_resident["max"] == eager_resident["max"]
