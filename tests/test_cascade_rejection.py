"""Tests for cascading rejection of dependent tentative transactions.

Paper section 7: "If the acceptance criteria requires the base and tentative
transaction have identical outputs, then subsequent transactions reading
tentative results written by T will fail too."
"""

import pytest

from repro.core import (
    AlwaysAccept,
    IdenticalOutputs,
    NonNegativeOutputs,
    TwoTierSystem,
)
from repro.core.tentative import TentativeStatus
from repro.txn.ops import IncrementOp, ReadOp, WriteOp
from repro.replication import SystemSpec


def make(cascade=True, **kw):
    num_base = kw.pop("num_base", 1)
    num_mobile = kw.pop("num_mobile", 1)
    kw.setdefault("db_size", 10)
    kw.setdefault("action_time", 0.001)
    kw.setdefault("initial_value", 100)
    return TwoTierSystem(SystemSpec(num_nodes=num_base + num_mobile, **kw),
                         num_base=num_base, cascade_rejections=cascade)


def test_dependent_transaction_cascades():
    system = make()
    mobile = system.mobile(1)
    system.disconnect_mobile(1)
    # T1 overdraws (will be rejected); T2 spends from the same object
    mobile.submit_tentative([IncrementOp(0, -150)], NonNegativeOutputs())
    mobile.submit_tentative([IncrementOp(0, -10)], IdenticalOutputs())
    system.run()
    system.reconnect_mobile(1)
    system.run()
    assert system.metrics.tentative_rejected == 2
    rejected = mobile.rejected_transactions
    assert len(rejected) == 2
    assert "depends on" in rejected[1].diagnostic
    # the dependent transaction never executed at the base: balance intact
    assert system.nodes[0].store.value(0) == 100


def test_independent_transactions_do_not_cascade():
    system = make()
    mobile = system.mobile(1)
    system.disconnect_mobile(1)
    mobile.submit_tentative([IncrementOp(0, -150)], NonNegativeOutputs())
    mobile.submit_tentative([IncrementOp(5, -10)], AlwaysAccept())  # other obj
    system.run()
    system.reconnect_mobile(1)
    system.run()
    assert system.metrics.tentative_rejected == 1
    assert system.metrics.tentative_accepted == 1
    assert system.nodes[0].store.value(5) == 90


def test_cascade_chains_through_multiple_transactions():
    system = make()
    mobile = system.mobile(1)
    system.disconnect_mobile(1)
    mobile.submit_tentative([IncrementOp(0, -150)], NonNegativeOutputs())  # reject
    mobile.submit_tentative([WriteOp(1, 7), ReadOp(0)], AlwaysAccept())   # reads 0
    mobile.submit_tentative([ReadOp(1), IncrementOp(2, -1)], AlwaysAccept())
    system.run()
    system.reconnect_mobile(1)
    system.run()
    # T2 touched tainted object 0 -> cascades; its write to 1 taints 1;
    # T3 read 1 -> cascades too
    assert system.metrics.tentative_rejected == 3
    assert system.metrics.tentative_accepted == 0
    assert system.nodes[0].store.value(1) == 100
    assert system.nodes[0].store.value(2) == 100


def test_cascade_off_replays_everything():
    system = make(cascade=False)
    mobile = system.mobile(1)
    system.disconnect_mobile(1)
    mobile.submit_tentative([IncrementOp(0, -150)], NonNegativeOutputs())
    mobile.submit_tentative([IncrementOp(0, -10)], NonNegativeOutputs())
    system.run()
    system.reconnect_mobile(1)
    system.run()
    # with weaker acceptance and no cascade, the second debit clears on the
    # real balance: "weaker acceptance criteria are possible"
    assert system.metrics.tentative_rejected == 1
    assert system.metrics.tentative_accepted == 1
    assert system.nodes[0].store.value(0) == 90


def test_cascaded_rejections_send_notices():
    system = make()
    mobile = system.mobile(1)
    system.disconnect_mobile(1)
    mobile.submit_tentative([IncrementOp(0, -150)], NonNegativeOutputs())
    mobile.submit_tentative([IncrementOp(0, -10)], IdenticalOutputs())
    system.run()
    system.reconnect_mobile(1)
    system.run()
    assert len(mobile.notices) == 2
    statuses = [status for _, status, _ in mobile.notices]
    assert statuses == [TentativeStatus.REJECTED, TentativeStatus.REJECTED]


def test_accepted_predecessors_never_taint():
    system = make()
    mobile = system.mobile(1)
    system.disconnect_mobile(1)
    mobile.submit_tentative([IncrementOp(0, -10)], NonNegativeOutputs())
    mobile.submit_tentative([IncrementOp(0, -10)], NonNegativeOutputs())
    system.run()
    system.reconnect_mobile(1)
    system.run()
    assert system.metrics.tentative_accepted == 2
    assert system.nodes[0].store.value(0) == 80


def test_base_stays_converged_through_cascades():
    system = make(num_base=2, num_mobile=2)
    for mid in (2, 3):
        system.disconnect_mobile(mid)
    for mid in (2, 3):
        mobile = system.mobile(mid)
        mobile.submit_tentative([IncrementOp(0, -80)], NonNegativeOutputs())
        mobile.submit_tentative([IncrementOp(0, -80)], NonNegativeOutputs())
    system.run()
    for mid in (2, 3):
        system.reconnect_mobile(mid)
    system.run()
    assert system.base_divergence() == 0
    assert system.divergence() == 0
