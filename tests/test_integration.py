"""Cross-strategy integration tests: the paper's qualitative claims, measured.

These are the section-8 summary statements turned into assertions:

* eager & lazy-master: zero reconciliations, conflicts become waits/deadlocks;
* lazy-group: reconciliations instead of deadlocks, convergent rules keep the
  replicas identical, manual rules let them drift (system delusion);
* two-tier: tentative rejects instead of reconciliations, master never drifts;
* every strategy preserves all committed increments under serial or
  serializable execution.
"""

import pytest

from repro.analytic import ModelParameters
from repro.harness import ExperimentConfig, run_experiment
from repro.replication.eager_group import EagerGroupSystem
from repro.replication.eager_master import EagerMasterSystem
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.lazy_master import LazyMasterSystem
from repro.txn.ops import IncrementOp
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import uniform_update_profile
from repro.replication import SystemSpec

ALL_SYSTEMS = [EagerGroupSystem, EagerMasterSystem, LazyGroupSystem,
               LazyMasterSystem]


@pytest.mark.parametrize("cls", ALL_SYSTEMS)
def test_light_load_converges_everywhere(cls):
    system = cls(SystemSpec(num_nodes=3, db_size=100, action_time=0.001,
                            seed=1))
    workload = WorkloadGenerator(
        system, uniform_update_profile(actions=2, db_size=100), tps=2.0
    )
    workload.start(duration=30.0)
    system.run()
    assert system.metrics.commits > 0
    assert system.converged(), f"{cls.__name__} diverged"


@pytest.mark.parametrize("cls", [EagerGroupSystem, EagerMasterSystem,
                                 LazyMasterSystem])
def test_serializable_strategies_never_reconcile(cls):
    system = cls(SystemSpec(num_nodes=3, db_size=30, action_time=0.002, seed=2))
    workload = WorkloadGenerator(
        system, uniform_update_profile(actions=3, db_size=30), tps=4.0
    )
    workload.start(duration=30.0)
    system.run()
    assert system.metrics.reconciliations == 0


@pytest.mark.parametrize("cls", [EagerGroupSystem, EagerMasterSystem,
                                 LazyMasterSystem])
def test_increment_conservation_under_serializable_execution(cls):
    """No lost updates: the final value equals the committed-delta sum."""
    system = cls(SystemSpec(num_nodes=3, db_size=10, action_time=0.001, seed=3,
                            retry_deadlocks=True))
    submitted = []
    for origin in range(3):
        for i in range(8):
            submitted.append(system.submit(origin, [IncrementOp(4, 1)]))
    system.run()
    committed = sum(1 for p in submitted if p.value.state.value == "committed")
    assert system.nodes[0].store.value(4) == committed
    assert system.converged()


def test_lazy_group_loses_updates_where_lazy_master_does_not():
    """The decisive difference between the lazy columns of Table 1."""

    def final_total(cls, **kw):
        system = cls(SystemSpec(num_nodes=3, db_size=5, action_time=0.001,
                                message_delay=1.0, seed=4), **kw)
        for origin in range(3):
            system.submit(origin, [IncrementOp(0, 1)])
        system.run()
        assert system.converged()
        return system.nodes[0].store.value(0)

    assert final_total(LazyMasterSystem) == 3  # master serializes: all kept
    assert final_total(LazyGroupSystem) < 3  # timestamp rule lost updates


def test_two_tier_vs_lazy_group_on_identical_mobile_load():
    """The paper's bottom line: same disconnected workload, lazy-group piles
    up reconciliations while two-tier (commuting txns) has none and still
    converges."""
    params = ModelParameters(db_size=50, nodes=3, tps=2, actions=2,
                             action_time=0.001, disconnect_time=4.0)
    lazy = run_experiment(
        ExperimentConfig(strategy="lazy-group", params=params, duration=40.0,
                         seed=5)
    )
    two_tier = run_experiment(
        ExperimentConfig(strategy="two-tier", params=params, duration=40.0,
                         seed=5, commutative=True)
    )
    assert lazy.metrics.reconciliations > 0
    assert two_tier.metrics.reconciliations == 0
    assert two_tier.metrics.tentative_rejected == 0
    assert two_tier.extra["base_divergence"] == 0


def test_eager_deadlocks_exceed_lazy_master_deadlocks_at_scale():
    """Equation 12 (N^3) versus equation 19 (N^2), measured.

    High contention makes the ordering visible in a short run.
    """
    def deadlocks(strategy):
        params = ModelParameters(db_size=40, nodes=4, tps=4, actions=4,
                                 action_time=0.005)
        result = run_experiment(
            ExperimentConfig(strategy=strategy, params=params, duration=60.0,
                             seed=6)
        )
        return result.metrics.deadlocks

    assert deadlocks("eager-group") > deadlocks("lazy-master")


def test_all_locks_released_after_quiescence():
    for cls in ALL_SYSTEMS:
        system = cls(SystemSpec(num_nodes=2, db_size=20, action_time=0.001,
                                seed=7))
        workload = WorkloadGenerator(
            system, uniform_update_profile(actions=2, db_size=20), tps=3.0
        )
        workload.start(duration=15.0)
        system.run()
        for node in system.nodes:
            node.tm.assert_quiescent()
