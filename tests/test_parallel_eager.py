"""Tests for the footnote-2 parallel-update eager variant."""

import pytest

from repro.replication.eager_group import EagerGroupSystem
from repro.txn.ops import IncrementOp, WriteOp
from repro.replication import SystemSpec


def make(parallel=True, **kw):
    kw.setdefault("num_nodes", 3)
    kw.setdefault("db_size", 20)
    kw.setdefault("action_time", 0.01)
    return EagerGroupSystem(SystemSpec(**kw), parallel_updates=parallel)


def test_duration_independent_of_node_count():
    """Footnote 2: 'the elapsed time for each action is constant
    (independent of N)'."""
    durations = {}
    for nodes in [2, 4, 8]:
        system = make(num_nodes=nodes)
        p = system.submit(0, [WriteOp(0, 1), WriteOp(1, 2)])
        system.run()
        durations[nodes] = p.value.duration
    assert durations[2] == durations[4] == durations[8] == pytest.approx(0.02)


def test_sequential_duration_grows_with_nodes():
    slow = EagerGroupSystem(
        SystemSpec(num_nodes=8, db_size=20, action_time=0.01),
        parallel_updates=False,
    )
    p = slow.submit(0, [WriteOp(0, 1), WriteOp(1, 2)])
    slow.run()
    assert p.value.duration == pytest.approx(0.16)


def test_all_replicas_still_updated():
    system = make()
    system.submit(0, [WriteOp(5, 42)])
    system.run()
    for node in system.nodes:
        assert node.store.value(5) == 42
    assert system.metrics.actions == 3
    assert system.converged()


def test_deadlock_aborts_cleanly_with_parallel_siblings():
    """A deadlock at one replica must abort the whole transaction and wake
    the sibling updates parked at other replicas, leaking nothing."""
    system = make(num_nodes=2, db_size=4)
    system.submit(0, [WriteOp(0, 100), WriteOp(1, 100)])
    system.submit(1, [WriteOp(1, 200), WriteOp(0, 200)])
    system.run()
    assert system.metrics.commits + system.metrics.aborts == 2
    assert system.converged()
    for node in system.nodes:
        node.tm.assert_quiescent()


def test_increments_conserved_under_parallel_contention():
    system = make(num_nodes=3, db_size=6, retry_deadlocks=True)
    for origin in range(3):
        for _ in range(6):
            system.submit(origin, [IncrementOp(2, 1)])
    system.run()
    assert system.nodes[0].store.value(2) == 18
    assert system.converged()
    for node in system.nodes:
        node.tm.assert_quiescent()


def test_parallel_deadlocks_fewer_than_sequential_at_scale():
    """The footnote's point: parallel application tames the explosion."""
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.profiles import uniform_update_profile

    deadlocks = {}
    for parallel in (False, True):
        system = EagerGroupSystem(
            SystemSpec(num_nodes=6, db_size=80, action_time=0.01, seed=1),
            parallel_updates=parallel,
        )
        workload = WorkloadGenerator(
            system, uniform_update_profile(actions=3, db_size=80), tps=4.0
        )
        workload.start(150.0)
        system.run()
        assert system.converged()
        deadlocks[parallel] = system.metrics.deadlocks
    assert deadlocks[True] < deadlocks[False] / 3


def test_analytic_parallel_rate_matches_lazy_master():
    from repro.analytic import ModelParameters, eager, lazy_master

    p = ModelParameters(db_size=1000, nodes=8, tps=5, actions=4,
                        action_time=0.01)
    assert eager.parallel_update_deadlock_rate(p) == pytest.approx(
        lazy_master.deadlock_rate(p)
    )


def test_analytic_parallel_rate_quadratic():
    from repro.analytic import ModelParameters, eager
    from repro.analytic.scaling import fit_exponent, sweep

    p = ModelParameters(db_size=1000, nodes=1, tps=5, actions=4,
                        action_time=0.01)
    r = sweep(eager.parallel_update_deadlock_rate, p, "nodes", [1, 2, 4, 8])
    assert fit_exponent(r.xs, r.ys) == pytest.approx(2.0)
