"""Tests for the reconciliation rule library."""

from repro.replication.base import ReplicaUpdate
from repro.replication.reconciliation import (
    CustomRule,
    LatestTimestampWins,
    ManualReconciliation,
    MergeCommutative,
    Outcome,
    SitePriorityWins,
    ValuePriorityWins,
    default_rule,
)
from repro.storage.record import Record
from repro.storage.versioning import Timestamp
from repro.txn.ops import IncrementOp, WriteOp
from repro.replication import SystemSpec


def local(value=10, ts=Timestamp(5, 0)):
    return Record(oid=0, value=value, ts=ts)


def update(new_value=20, new_ts=Timestamp(6, 1), old_ts=Timestamp(1, 1), op=None):
    return ReplicaUpdate(oid=0, old_ts=old_ts, new_ts=new_ts,
                         new_value=new_value, op=op)


class TestLatestTimestampWins:
    def test_newer_update_applies(self):
        rule = LatestTimestampWins()
        assert rule.resolve(local(ts=Timestamp(5, 0)),
                            update(new_ts=Timestamp(6, 1))) is Outcome.APPLY

    def test_older_update_discarded(self):
        rule = LatestTimestampWins()
        assert rule.resolve(local(ts=Timestamp(9, 0)),
                            update(new_ts=Timestamp(6, 1))) is Outcome.DISCARD

    def test_is_the_default_rule(self):
        assert isinstance(default_rule(), LatestTimestampWins)


class TestSitePriority:
    def test_high_priority_site_wins(self):
        rule = SitePriorityWins({0: 10, 1: 1})
        # local version written by node 0 (priority 10) beats newer node-1 update
        assert rule.resolve(local(ts=Timestamp(5, 0)),
                            update(new_ts=Timestamp(99, 1))) is Outcome.DISCARD

    def test_low_priority_local_loses(self):
        rule = SitePriorityWins({0: 1, 1: 10})
        assert rule.resolve(local(ts=Timestamp(5, 0)),
                            update(new_ts=Timestamp(2, 1))) is Outcome.APPLY

    def test_equal_priority_falls_back_to_timestamp(self):
        rule = SitePriorityWins({})
        assert rule.resolve(local(ts=Timestamp(5, 0)),
                            update(new_ts=Timestamp(6, 1))) is Outcome.APPLY
        assert rule.resolve(local(ts=Timestamp(7, 0)),
                            update(new_ts=Timestamp(6, 1))) is Outcome.DISCARD


class TestValuePriority:
    def test_larger_value_wins(self):
        rule = ValuePriorityWins()
        assert rule.resolve(local(value=10), update(new_value=20)) is Outcome.APPLY
        assert rule.resolve(local(value=30), update(new_value=20)) is Outcome.DISCARD

    def test_custom_key(self):
        rule = ValuePriorityWins(key=lambda v: -v)  # smaller wins
        assert rule.resolve(local(value=10), update(new_value=5)) is Outcome.APPLY

    def test_incomparable_values_fall_back_to_time(self):
        rule = ValuePriorityWins()
        assert rule.resolve(
            local(value="abc", ts=Timestamp(5, 0)),
            update(new_value=7, new_ts=Timestamp(6, 1)),
        ) is Outcome.APPLY


class TestMergeCommutative:
    def test_commutative_op_merges(self):
        rule = MergeCommutative()
        assert rule.resolve(
            local(), update(op=IncrementOp(0, 5))
        ) is Outcome.MERGE

    def test_non_commutative_falls_back_to_time(self):
        rule = MergeCommutative()
        assert rule.resolve(
            local(ts=Timestamp(5, 0)),
            update(new_ts=Timestamp(6, 1), op=WriteOp(0, 9)),
        ) is Outcome.APPLY

    def test_missing_op_falls_back(self):
        rule = MergeCommutative()
        assert rule.resolve(
            local(ts=Timestamp(9, 0)), update(new_ts=Timestamp(6, 1))
        ) is Outcome.DISCARD


class TestEarliestTimestampWins:
    def test_older_local_kept(self):
        from repro.replication.reconciliation import EarliestTimestampWins

        rule = EarliestTimestampWins()
        assert rule.resolve(local(ts=Timestamp(2, 0)),
                            update(new_ts=Timestamp(6, 1))) is Outcome.DISCARD

    def test_older_incoming_applied(self):
        from repro.replication.reconciliation import EarliestTimestampWins

        rule = EarliestTimestampWins()
        assert rule.resolve(local(ts=Timestamp(9, 0)),
                            update(new_ts=Timestamp(6, 1))) is Outcome.APPLY

    def test_unwritten_local_always_yields(self):
        from repro.replication.reconciliation import EarliestTimestampWins

        rule = EarliestTimestampWins()
        assert rule.resolve(local(ts=Timestamp.ZERO),
                            update(new_ts=Timestamp(6, 1))) is Outcome.APPLY


class TestValueRules:
    def test_minimum_wins(self):
        from repro.replication.reconciliation import MinimumWins

        rule = MinimumWins()
        assert rule.resolve(local(value=10), update(new_value=5)) is Outcome.APPLY
        assert rule.resolve(local(value=3), update(new_value=5)) is Outcome.DISCARD

    def test_minimum_incomparable_falls_back_to_time(self):
        from repro.replication.reconciliation import MinimumWins

        rule = MinimumWins()
        assert rule.resolve(
            local(value="x", ts=Timestamp(1, 0)),
            update(new_value=5, new_ts=Timestamp(2, 1)),
        ) is Outcome.APPLY

    def test_maximum_wins_alias(self):
        from repro.replication.reconciliation import MaximumWins

        rule = MaximumWins()
        assert rule.name == "maximum-wins"
        assert rule.resolve(local(value=3), update(new_value=5)) is Outcome.APPLY


class TestFixedSideRules:
    def test_discard_incoming(self):
        from repro.replication.reconciliation import DiscardIncoming

        assert DiscardIncoming().resolve(local(), update()) is Outcome.DISCARD

    def test_overwrite_incoming(self):
        from repro.replication.reconciliation import OverwriteIncoming

        assert OverwriteIncoming().resolve(local(), update()) is Outcome.APPLY


class TestAdditiveDifference:
    def test_merges_increment_ops(self):
        from repro.replication.reconciliation import AdditiveDifference

        rule = AdditiveDifference()
        assert rule.resolve(
            local(), update(op=IncrementOp(0, 5))
        ) is Outcome.MERGE

    def test_system_level_merge_preserves_both_deltas(self):
        from repro.replication.lazy_group import LazyGroupSystem
        from repro.replication.reconciliation import AdditiveDifference

        system = LazyGroupSystem(
            SystemSpec(num_nodes=2, db_size=3, action_time=0.001,
                       message_delay=1.0),
            rule=AdditiveDifference(),
        )
        system.submit(0, [IncrementOp(0, 100)])
        system.submit(1, [IncrementOp(0, 10)])
        system.run()
        assert system.converged()
        assert system.nodes[0].store.value(0) == 110

    def test_merge_with_missing_op_falls_back_to_install(self):
        """A MERGE verdict on an update that carries no operation must not
        crash; the value is installed instead."""
        from repro.replication.base import ReplicaUpdate
        from repro.replication.lazy_group import LazyGroupSystem
        from repro.replication.reconciliation import AdditiveDifference
        from repro.storage.versioning import Timestamp as TS

        system = LazyGroupSystem(
            SystemSpec(num_nodes=2, db_size=3, action_time=0.001),
            rule=AdditiveDifference(),
        )
        system.submit(1, [IncrementOp(0, 1)])
        system.run()
        stale = ReplicaUpdate(oid=0, old_ts=TS(99, 0), new_ts=TS(100, 0),
                              new_value=77, op=None)
        system.network.send(0, 1, "replica-update", ([stale], 0))
        system.run()
        assert system.nodes[1].store.value(0) == 77


class TestManualAndCustom:
    def test_manual_always_defers(self):
        rule = ManualReconciliation()
        assert rule.resolve(local(), update()) is Outcome.DEFER

    def test_custom_rule_runs_callable(self):
        rule = CustomRule(lambda rec, upd: Outcome.APPLY, name="mine")
        assert rule.resolve(local(), update()) is Outcome.APPLY
        assert rule.name == "mine"
