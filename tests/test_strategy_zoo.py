"""Strategy-zoo smoke: the registry is the single source of truth, and
every member — the certification newcomers in particular — survives a
faulted run with a green oracle.

`test_faults_chaos.py` grills the 1996 strategies; this file extends the
same contract to everything `STRATEGY_CLASSES` registers, so adding a
strategy without wiring it into the CLI, the Markov track, and the chaos
oracle fails here rather than in a user's sweep.
"""

import pytest

from repro.analytic import ModelParameters
from repro.analytic.markov_strategies import MARKOV_REFERENCE, MARKOV_STRATEGIES
from repro.faults import FaultPlan
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.experiment import STRATEGIES, STRATEGY_CLASSES
from repro.replication.pipeline import PHASE_ORDER, describe_pipeline

NEW_STRATEGIES = ("deferred-update", "scar")

PARAMS = ModelParameters(
    db_size=50, nodes=3, tps=5, actions=3, action_time=0.005,
    message_delay=0.002,
)
DURATION = 20.0


def run(strategy, spec, *, seed=1, **overrides):
    plan = FaultPlan.from_spec(
        spec, num_nodes=PARAMS.nodes, duration=DURATION
    )
    config = ExperimentConfig(
        strategy=strategy,
        params=PARAMS,
        duration=DURATION,
        seed=seed,
        faults=plan,
        **overrides,
    )
    return run_experiment(config)


# --------------------------------------------------------------------- #
# registry is the single source of truth
# --------------------------------------------------------------------- #


def test_every_registered_strategy_names_itself():
    for name, cls in STRATEGY_CLASSES.items():
        assert cls.name == name


def test_every_registered_strategy_declares_a_pipeline():
    for name, cls in STRATEGY_CLASSES.items():
        phases = describe_pipeline(cls)
        assert phases, f"{name} declares no PHASES"
        assert set(phases) <= set(PHASE_ORDER)
        # declared in canonical lifecycle order
        indices = [PHASE_ORDER.index(p) for p in phases]
        assert indices == sorted(indices), f"{name} phases out of order"


def test_markov_track_covers_the_whole_registry():
    assert MARKOV_STRATEGIES == STRATEGIES
    assert set(MARKOV_REFERENCE) == set(STRATEGIES)


def test_cli_choices_derive_from_the_registry():
    import argparse

    from repro.cli import build_parser

    def strategy_choices(p):
        found = []
        for action in p._actions:
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    found.extend(strategy_choices(sub))
            elif action.dest == "strategy" and action.choices:
                found.append(tuple(sorted(set(action.choices) - {"all"})))
        return found

    per_command = strategy_choices(build_parser())
    assert per_command, "no --strategy options found on the CLI"
    for choices in per_command:
        assert choices == STRATEGIES


def test_comparison_default_derives_from_the_registry():
    import inspect

    from repro.harness.comparison import strategy_comparison

    source = inspect.getsource(strategy_comparison)
    assert "STRATEGIES" in source


# --------------------------------------------------------------------- #
# chaos oracle over the newcomers
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("strategy", NEW_STRATEGIES)
def test_lossless_link_faults_leave_certification_strategies_convergent(strategy):
    result = run(strategy, "dup=0.3,reorder=0.3,jitter=0.02")
    assert result.divergence == 0
    assert result.extra["oracle_ok"] is True
    assert result.extra["oracle_expected_convergence"] is True


@pytest.mark.parametrize("strategy", NEW_STRATEGIES)
def test_healing_partition_converges_after_flush(strategy):
    result = run(strategy, "partition=3")
    assert result.divergence == 0
    assert result.extra["oracle_ok"] is True


@pytest.mark.parametrize("strategy", NEW_STRATEGIES)
def test_crash_with_recovery_ends_consistent(strategy):
    result = run(strategy, "crash=4")
    assert result.divergence == 0
    assert result.extra["oracle_ok"] is True
    assert not result.system.crashed


@pytest.mark.parametrize("strategy", NEW_STRATEGIES)
def test_drops_excuse_divergence_but_not_accounting(strategy):
    result = run(strategy, "drop=0.1")
    assert result.extra["oracle_ok"] is True
    assert result.extra["oracle_expected_convergence"] is False


@pytest.mark.parametrize("strategy", NEW_STRATEGIES)
def test_certification_work_shows_up_under_contention(strategy):
    # fault-free, contended: certification must actually adjudicate
    config = ExperimentConfig(
        strategy=strategy,
        params=ModelParameters(
            db_size=20, nodes=3, tps=20, actions=4, action_time=0.005,
            message_delay=0.002,
        ),
        duration=DURATION,
        seed=1,
    )
    result = run_experiment(config)
    assert result.extra["oracle_ok"] is True
    assert result.metrics.commits > 0
    extras = result.metrics.as_dict()
    assert extras.get("cert_aborts", 0) > 0, (
        f"{strategy} never cert-aborted under heavy contention"
    )
