"""Tests for Record and ObjectStore."""

import pytest

from repro.exceptions import ConfigurationError
from repro.storage.record import Record
from repro.storage.store import ObjectStore, divergence
from repro.storage.versioning import Timestamp


class TestRecord:
    def test_defaults(self):
        record = Record(oid=3)
        assert record.value == 0
        assert record.ts == Timestamp.ZERO
        assert record.vector is None

    def test_copy_is_independent(self):
        record = Record(oid=1, value=10, ts=Timestamp(1, 0))
        snapshot = record.copy()
        record.value = 20
        assert snapshot.value == 10
        assert snapshot.ts == Timestamp(1, 0)


class TestObjectStore:
    def test_initialization(self):
        store = ObjectStore(node_id=0, db_size=5, initial_value=7)
        assert len(store) == 5
        assert all(store.value(oid) == 7 for oid in store.oids())
        assert all(store.timestamp(oid) == Timestamp.ZERO for oid in store.oids())

    def test_db_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ObjectStore(node_id=0, db_size=0)

    def test_write_and_read(self):
        store = ObjectStore(node_id=0, db_size=3)
        ts = Timestamp(1, 0)
        store.write(1, 42, ts)
        assert store.value(1) == 42
        assert store.timestamp(1) == ts
        assert store.value(0) == 0  # others untouched

    def test_read_unknown_oid_raises(self):
        store = ObjectStore(node_id=0, db_size=3)
        with pytest.raises(KeyError):
            store.read(99)

    def test_apply_transform(self):
        store = ObjectStore(node_id=0, db_size=3, initial_value=10)
        store.apply(0, lambda v: v * 2, Timestamp(1, 0))
        assert store.value(0) == 20

    def test_restore_rolls_back(self):
        store = ObjectStore(node_id=0, db_size=3)
        store.write(0, 5, Timestamp(1, 0))
        store.restore(0, 0, Timestamp.ZERO)
        assert store.value(0) == 0
        assert store.timestamp(0) == Timestamp.ZERO

    def test_snapshot(self):
        store = ObjectStore(node_id=0, db_size=3)
        store.write(2, 9, Timestamp(1, 0))
        assert store.snapshot() == {0: 0, 1: 0, 2: 9}

    def test_contains_and_iter(self):
        store = ObjectStore(node_id=0, db_size=2)
        assert 0 in store and 1 in store and 2 not in store
        assert sorted(r.oid for r in store) == [0, 1]


class TestDivergence:
    def _stores(self, n):
        return [ObjectStore(node_id=i, db_size=4) for i in range(n)]

    def test_identical_stores_converged(self):
        assert divergence(self._stores(3)) == 0

    def test_single_store_trivially_converged(self):
        assert divergence(self._stores(1)) == 0

    def test_one_differing_object(self):
        stores = self._stores(3)
        stores[1].write(2, 99, Timestamp(1, 1))
        assert divergence(stores) == 1

    def test_multiple_differing_objects(self):
        stores = self._stores(2)
        stores[0].write(0, 1, Timestamp(1, 0))
        stores[0].write(3, 1, Timestamp(2, 0))
        assert divergence(stores) == 2

    def test_same_writes_everywhere_converged(self):
        stores = self._stores(3)
        for store in stores:
            store.write(1, 55, Timestamp(1, 0))
        assert divergence(stores) == 0
