"""Regression tests: serializable reads must release their shared locks.

A transaction that only *reads* at some node still takes shared locks there
under ``lock_reads=True``; every strategy must include such nodes in its
commit/abort release set, or the locks leak and the system convoys to a halt
(found by the serializability ablation benchmark).
"""

import random

import pytest

from repro.core import AlwaysAccept, TwoTierSystem
from repro.replication.eager_group import EagerGroupSystem
from repro.replication.eager_master import EagerMasterSystem
from repro.replication.lazy_master import LazyMasterSystem
from repro.txn.ops import ReadOp, WriteOp
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import TransactionProfile
from repro.replication import SystemSpec


def read_write_factory(oid: int, rng: random.Random):
    if rng.random() < 0.5:
        return ReadOp(oid)
    return WriteOp(oid, rng.randrange(1_000_000))


@pytest.mark.parametrize("cls", [EagerGroupSystem, EagerMasterSystem,
                                 LazyMasterSystem])
def test_read_only_transaction_releases_shared_locks(cls):
    system = cls(SystemSpec(num_nodes=3, db_size=10, action_time=0.001,
                            lock_reads=True))
    p = system.submit(1, [ReadOp(4), ReadOp(7)])
    system.run()
    assert p.value.state.value == "committed"
    for node in system.nodes:
        node.tm.assert_quiescent()
        assert node.locks.holders(4) == {}
        assert node.locks.holders(7) == {}


@pytest.mark.parametrize("cls", [EagerGroupSystem, EagerMasterSystem,
                                 LazyMasterSystem])
def test_mixed_read_write_workload_quiesces_under_read_locks(cls):
    system = cls(SystemSpec(num_nodes=3, db_size=40, action_time=0.005,
                            lock_reads=True, seed=9))
    profile = TransactionProfile(actions=3, db_size=40,
                                 op_factory=read_write_factory)
    workload = WorkloadGenerator(system, profile, tps=3.0)
    workload.start(40.0)
    system.run()
    assert system.metrics.commits > 50  # no convoy collapse
    assert system.converged()
    for node in system.nodes:
        node.tm.assert_quiescent()


def test_two_tier_base_replay_releases_read_locks():
    system = TwoTierSystem(
        SystemSpec(num_nodes=3, db_size=10, action_time=0.001, lock_reads=True,
                   initial_value=5),
        num_base=2,
    )
    mobile = system.mobile(2)
    system.disconnect_mobile(2)
    # tentative txn reads one object (mastered at base 1) and writes another
    mobile.submit_tentative([ReadOp(1), WriteOp(0, 42)], AlwaysAccept())
    system.run()
    system.reconnect_mobile(2)
    system.run()
    assert system.metrics.tentative_accepted == 1
    for node in system.base_nodes():
        node.tm.assert_quiescent()
        assert node.locks.holders(1) == {}
