"""Tests for the TPC-B-style workload."""

import random

import pytest

from repro.exceptions import ConfigurationError
from repro.replication.lazy_master import LazyMasterSystem
from repro.txn.ops import AppendOp, IncrementOp
from repro.workload.generator import WorkloadGenerator
from repro.workload.tpcb import (
    ACCOUNTS_PER_BRANCH,
    TELLERS_PER_BRANCH,
    TpcbLayout,
    TpcbProfile,
    branch_balance_invariant,
)
from repro.replication import SystemSpec


class TestLayout:
    def test_ranges_are_disjoint_and_cover_db(self):
        layout = TpcbLayout(branches=3)
        oids = set()
        for branch in range(3):
            oids.add(layout.branch_oid(branch))
            oids.add(layout.history_oid(branch))
            for teller in range(TELLERS_PER_BRANCH):
                oids.add(layout.teller_oid(branch, teller))
            for account in range(ACCOUNTS_PER_BRANCH):
                oids.add(layout.account_oid(branch, account))
        assert len(oids) == layout.db_size
        assert oids == set(range(layout.db_size))

    def test_db_size_scales_with_branches(self):
        assert TpcbLayout(branches=2).db_size == 2 * TpcbLayout(1).db_size

    def test_bounds_checked(self):
        layout = TpcbLayout(branches=2)
        with pytest.raises(ConfigurationError):
            layout.branch_oid(2)
        with pytest.raises(ConfigurationError):
            layout.teller_oid(0, TELLERS_PER_BRANCH)
        with pytest.raises(ConfigurationError):
            layout.account_oid(1, ACCOUNTS_PER_BRANCH)
        with pytest.raises(ConfigurationError):
            TpcbLayout(branches=0)


class TestProfile:
    def test_transaction_shape(self):
        profile = TpcbProfile(TpcbLayout(branches=2))
        ops = profile.build(random.Random(0))
        assert len(ops) == 4
        assert isinstance(ops[0], IncrementOp)  # account
        assert isinstance(ops[1], IncrementOp)  # teller
        assert isinstance(ops[2], IncrementOp)  # branch
        assert isinstance(ops[3], AppendOp)     # history

    def test_teller_belongs_to_branch(self):
        layout = TpcbLayout(branches=4)
        profile = TpcbProfile(layout)
        rng = random.Random(1)
        for _ in range(100):
            ops = profile.build(rng)
            branch = ops[2].oid
            teller_index = ops[1].oid - layout.branches
            assert teller_index // TELLERS_PER_BRANCH == branch

    def test_remote_fraction_zero_keeps_accounts_home(self):
        layout = TpcbLayout(branches=4)
        profile = TpcbProfile(layout, remote_fraction=0.0)
        rng = random.Random(2)
        offset = layout.branches * (1 + TELLERS_PER_BRANCH)
        for _ in range(100):
            ops = profile.build(rng)
            account_branch = (ops[0].oid - offset) // ACCOUNTS_PER_BRANCH
            assert account_branch == ops[2].oid

    def test_remote_fraction_produces_cross_branch_traffic(self):
        layout = TpcbLayout(branches=4)
        profile = TpcbProfile(layout, remote_fraction=1.0)
        rng = random.Random(3)
        offset = layout.branches * (1 + TELLERS_PER_BRANCH)
        remote = 0
        for _ in range(50):
            ops = profile.build(rng)
            account_branch = (ops[0].oid - offset) // ACCOUNTS_PER_BRANCH
            if account_branch != ops[2].oid:
                remote += 1
        assert remote == 50

    def test_invalid_remote_fraction(self):
        with pytest.raises(ConfigurationError):
            TpcbProfile(TpcbLayout(1), remote_fraction=1.5)


class TestEndToEnd:
    def test_branch_invariant_holds_under_lazy_master(self):
        layout = TpcbLayout(branches=2)
        profile = TpcbProfile(layout, remote_fraction=0.0)
        system = LazyMasterSystem(
            SystemSpec(num_nodes=2, db_size=layout.db_size, action_time=0.0005,
                       seed=5, retry_deadlocks=True),
        )
        workload = WorkloadGenerator(system, profile, tps=5.0)
        workload.start(duration=30.0)
        system.run()
        assert system.metrics.commits > 50
        assert system.converged()
        assert branch_balance_invariant(system.nodes[0].store, layout)

    def test_history_appends_accumulate(self):
        layout = TpcbLayout(branches=1)
        profile = TpcbProfile(layout)
        system = LazyMasterSystem(
            SystemSpec(num_nodes=2, db_size=layout.db_size, action_time=0.0005,
                       seed=6, retry_deadlocks=True),
        )
        workload = WorkloadGenerator(system, profile, tps=5.0)
        workload.start(duration=20.0)
        system.run()
        history = system.nodes[0].store.value(layout.history_oid(0))
        assert isinstance(history, tuple)
        assert len(history) == system.metrics.commits
