"""Tests for the simulated network."""

import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.network import Network
from repro.sim import Engine


def make_net(num_nodes=3, message_delay=0.0):
    engine = Engine()
    net = Network(engine, num_nodes, message_delay=message_delay)
    inboxes = {i: [] for i in range(num_nodes)}
    for i in range(num_nodes):
        net.register(i, lambda msg, i=i: inboxes[i].append(msg))
    return engine, net, inboxes


def test_immediate_delivery_with_zero_delay():
    engine, net, inboxes = make_net()
    net.send(0, 1, "ping", "hello")
    engine.run()
    assert len(inboxes[1]) == 1
    assert inboxes[1][0].payload == "hello"
    assert inboxes[1][0].deliver_time == 0.0


def test_delivery_after_message_delay():
    engine, net, inboxes = make_net(message_delay=2.5)
    net.send(0, 1, "ping", None)
    engine.run()
    assert inboxes[1][0].deliver_time == 2.5
    assert inboxes[1][0].latency == 2.5


def test_extra_delay_adds_to_base():
    engine, net, inboxes = make_net(message_delay=1.0)
    net.send(0, 1, "ping", None, extra_delay=2.0)
    engine.run()
    assert inboxes[1][0].deliver_time == 3.0


def test_messages_between_same_pair_preserve_order():
    engine, net, inboxes = make_net(message_delay=1.0)
    for i in range(5):
        net.send(0, 1, "seq", i)
    engine.run()
    assert [m.payload for m in inboxes[1]] == [0, 1, 2, 3, 4]


def test_send_to_disconnected_parks_until_reconnect():
    engine, net, inboxes = make_net()
    net.disconnect(1)
    net.send(0, 1, "ping", "deferred")
    engine.run()
    assert inboxes[1] == []
    assert net.parked_inbound(1) == 1
    net.reconnect(1)
    engine.run()
    assert [m.payload for m in inboxes[1]] == ["deferred"]
    assert net.parked_inbound(1) == 0


def test_send_from_disconnected_parks_outbound():
    engine, net, inboxes = make_net()
    net.disconnect(0)
    net.send(0, 1, "ping", "from-dark")
    engine.run()
    assert inboxes[1] == []
    assert net.parked_outbound(0) == 1
    net.reconnect(0)
    engine.run()
    assert [m.payload for m in inboxes[1]] == ["from-dark"]


def test_parked_messages_flush_in_fifo_order():
    engine, net, inboxes = make_net()
    net.disconnect(1)
    for i in range(4):
        net.send(0, 1, "seq", i)
    net.reconnect(1)
    engine.run()
    assert [m.payload for m in inboxes[1]] == [0, 1, 2, 3]


def test_double_disconnect_and_reconnect_are_idempotent():
    engine, net, inboxes = make_net()
    net.disconnect(1)
    net.disconnect(1)
    net.reconnect(1)
    net.reconnect(1)
    net.send(0, 1, "ping", "ok")
    engine.run()
    assert len(inboxes[1]) == 1


def test_partition_parks_messages():
    engine, net, inboxes = make_net()
    net.set_reachable(0, 1, False)
    net.send(0, 1, "ping", "blocked")
    engine.run()
    assert inboxes[1] == []
    assert net.parked_inbound(1) == 1
    # healing the partition flushes the parked traffic, mirroring reconnect
    # — convergence after heal depends on it
    net.set_reachable(0, 1, True)
    engine.run()
    assert [m.payload for m in inboxes[1]] == ["blocked"]
    assert net.parked_inbound(1) == 0


def test_partition_heal_keeps_other_pairs_parked():
    engine, net, inboxes = make_net()
    net.set_reachable(0, 1, False)
    net.set_reachable(2, 1, False)
    net.send(0, 1, "ping", "from-0")
    net.send(2, 1, "ping", "from-2")
    engine.run()
    net.set_reachable(0, 1, True)
    engine.run()
    # only the healed pair's message flushed; (1, 2) stays cut
    assert [m.payload for m in inboxes[1]] == ["from-0"]
    assert net.parked_inbound(1) == 1
    net.set_reachable(1, 2, True)
    engine.run()
    assert [m.payload for m in inboxes[1]] == ["from-0", "from-2"]


def test_reachability_is_symmetric():
    engine, net, _ = make_net()
    net.set_reachable(2, 0, False)
    assert not net.reachable(0, 2)
    assert not net.reachable(2, 0)


def test_set_reachable_argument_order_is_irrelevant():
    # the footgun: cutting (a, b) then healing (b, a) must agree
    engine, net, inboxes = make_net()
    net.set_reachable(0, 1, False)
    net.set_reachable(1, 0, True)
    net.send(0, 1, "ping", "ok")
    engine.run()
    assert [m.payload for m in inboxes[1]] == ["ok"]


def test_set_reachable_is_idempotent():
    engine, net, inboxes = make_net()
    net.set_reachable(0, 1, False)
    net.set_reachable(1, 0, False)  # duplicate cut, either order
    net.send(0, 1, "ping", "late")
    net.set_reachable(0, 1, True)
    net.set_reachable(0, 1, True)  # duplicate heal is a no-op
    engine.run()
    assert [m.payload for m in inboxes[1]] == ["late"]


def test_set_reachable_self_pair_rejected():
    engine, net, _ = make_net()
    with pytest.raises(ConfigurationError):
        net.set_reachable(1, 1, False)


def test_generator_handler_runs_as_process():
    engine = Engine()
    net = Network(engine, 2)
    log = []

    def handler(msg):
        def work():
            yield engine.timeout(1.0)
            log.append((engine.now, msg.payload))

        return work()

    net.register(1, handler)
    net.send(0, 1, "job", "x")
    engine.run()
    assert log == [(1.0, "x")]


def test_unregistered_destination_raises():
    engine = Engine()
    net = Network(engine, 2)
    net.send(0, 1, "ping", None)
    with pytest.raises(SimulationError):
        engine.run()


def test_invalid_node_ids_rejected():
    engine = Engine()
    net = Network(engine, 2)
    with pytest.raises(ConfigurationError):
        net.send(0, 5, "ping", None)
    with pytest.raises(ConfigurationError):
        net.disconnect(9)
    with pytest.raises(ConfigurationError):
        Network(engine, 0)
    with pytest.raises(ConfigurationError):
        Network(engine, 2, message_delay=-1)


def test_counters():
    engine, net, inboxes = make_net()
    net.disconnect(2)
    net.send(0, 1, "a", None)
    net.send(0, 2, "b", None)  # parked
    engine.run()
    assert net.messages_sent == 2
    assert net.messages_delivered == 1
    assert net.messages_parked == 1


def test_latency_statistics():
    engine, net, inboxes = make_net(message_delay=2.0)
    net.send(0, 1, "a", None)
    engine.run()
    assert net.mean_latency() == pytest.approx(2.0)
    # a parked message's queueing time counts toward latency
    net.disconnect(2)
    net.send(0, 2, "b", None)
    engine.run(until=engine.now + 10.0)
    net.reconnect(2)
    engine.run()
    assert net.max_latency >= 10.0
    assert net.mean_latency() > 2.0


def test_mean_latency_zero_before_any_delivery():
    engine, net, _ = make_net()
    assert net.mean_latency() == 0.0


def test_parked_past_due_message_delivers_promptly_on_reconnect():
    engine, net, inboxes = make_net(message_delay=1.0)
    net.disconnect(1)
    net.send(0, 1, "late", None)
    engine.run(until=50.0)
    net.reconnect(1)
    engine.run()
    msg = inboxes[1][0]
    assert msg.deliver_time == pytest.approx(50.0)
    assert msg.latency == pytest.approx(50.0)
