"""Property-based verification of every equation's scaling laws.

Each closed form claims exact polynomial dependencies on each Table-2
parameter.  These tests draw random parameter points and random scale
factors and check the ratios exactly — a typo in any exponent or constant
anywhere in the analytic package fails loudly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import (
    ModelParameters,
    eager,
    lazy_group,
    lazy_master,
    single_node,
)
from repro.analytic.dilation import node_utilization

params_strategy = st.builds(
    ModelParameters,
    db_size=st.integers(100, 1_000_000),
    nodes=st.integers(1, 64),
    tps=st.floats(0.1, 1000.0),
    actions=st.integers(1, 30),
    action_time=st.floats(1e-4, 1.0),
    disconnect_time=st.floats(0.1, 1e5),
)

factor_strategy = st.sampled_from([2, 3, 5, 10])

SETTINGS = settings(max_examples=80, deadline=None)


def ratio(fn, p, field, k):
    base = fn(p)
    current = getattr(p, field)
    scaled_value = current * k
    if isinstance(current, int):
        scaled_value = int(scaled_value)
    scaled = fn(p.with_(**{field: scaled_value}))
    return scaled / base


class TestEquation5Laws:
    @SETTINGS
    @given(params_strategy, factor_strategy)
    def test_quadratic_in_tps(self, p, k):
        assert ratio(single_node.node_deadlock_rate, p, "tps", k) == (
            pytest.approx(k**2)
        )

    @SETTINGS
    @given(params_strategy, factor_strategy)
    def test_quintic_in_actions(self, p, k):
        assert ratio(single_node.node_deadlock_rate, p, "actions", k) == (
            pytest.approx(k**5)
        )

    @SETTINGS
    @given(params_strategy, factor_strategy)
    def test_inverse_square_in_db(self, p, k):
        assert ratio(single_node.node_deadlock_rate, p, "db_size", k) == (
            pytest.approx(k**-2)
        )

    @SETTINGS
    @given(params_strategy, factor_strategy)
    def test_linear_in_action_time(self, p, k):
        assert ratio(single_node.node_deadlock_rate, p, "action_time", k) == (
            pytest.approx(k)
        )


class TestEquation12Laws:
    @SETTINGS
    @given(params_strategy, factor_strategy)
    def test_cubic_in_nodes(self, p, k):
        assert ratio(eager.total_deadlock_rate, p, "nodes", k) == (
            pytest.approx(k**3)
        )

    @SETTINGS
    @given(params_strategy, factor_strategy)
    def test_quintic_in_actions(self, p, k):
        assert ratio(eager.total_deadlock_rate, p, "actions", k) == (
            pytest.approx(k**5)
        )

    @SETTINGS
    @given(params_strategy)
    def test_consistency_with_components(self, p):
        """Eq 12 == Total_Transactions x PD_eager / Transaction_Duration."""
        expected = (
            eager.total_transactions(p)
            * eager.deadlock_probability(p)
            / eager.transaction_duration(p)
        )
        assert eager.total_deadlock_rate(p) == pytest.approx(expected)

    @SETTINGS
    @given(params_strategy)
    def test_scaled_db_is_substitution(self, p):
        assert eager.total_deadlock_rate_scaled_db(p) == pytest.approx(
            eager.total_deadlock_rate(p.scaled_db())
        )


class TestEquation14And18Laws:
    @SETTINGS
    @given(params_strategy)
    def test_eq14_equals_eq10(self, p):
        assert lazy_group.reconciliation_rate(p) == pytest.approx(
            eager.total_wait_rate(p)
        )

    @SETTINGS
    @given(params_strategy, factor_strategy)
    def test_eq18_quadratic_in_tps(self, p, k):
        assert ratio(lazy_group.mobile_reconciliation_rate, p, "tps", k) == (
            pytest.approx(k**2)
        )

    @SETTINGS
    @given(params_strategy, factor_strategy)
    def test_eq18_linear_in_disconnect_time(self, p, k):
        assert ratio(
            lazy_group.mobile_reconciliation_rate, p, "disconnect_time", k
        ) == pytest.approx(k)

    @SETTINGS
    @given(params_strategy)
    def test_eq17_is_inbound_times_outbound_over_db(self, p):
        expected = (
            lazy_group.inbound_updates(p)
            * lazy_group.outbound_updates(p)
            / p.db_size
        )
        assert lazy_group.collision_probability(p, exact_nodes=True) == (
            pytest.approx(expected)
        )


class TestEquation19Laws:
    @SETTINGS
    @given(params_strategy, factor_strategy)
    def test_quadratic_in_nodes(self, p, k):
        assert ratio(lazy_master.deadlock_rate, p, "nodes", k) == (
            pytest.approx(k**2)
        )

    @SETTINGS
    @given(params_strategy)
    def test_single_node_is_equation_5(self, p):
        q = p.with_(nodes=1)
        assert lazy_master.deadlock_rate(q) == pytest.approx(
            single_node.node_deadlock_rate(q)
        )

    @SETTINGS
    @given(params_strategy)
    def test_dominated_by_eager_beyond_one_node(self, p):
        if p.nodes > 1:
            assert lazy_master.deadlock_rate(p) < eager.total_deadlock_rate(p)
        else:
            assert lazy_master.deadlock_rate(p) == pytest.approx(
                eager.total_deadlock_rate(p)
            )


class TestCrossEquationOrderings:
    @SETTINGS
    @given(params_strategy)
    def test_waits_dominate_deadlocks_in_validity_region(self, p):
        """'Waits are much more frequent than deadlocks because it takes two
        waits to make a deadlock.'

        Algebraically eq12 / eq10 = Actions^2 / (2 DB_Size), so the claim
        holds exactly when a transaction's footprint is small relative to
        the database — the model's dilute regime.  (A transaction updating
        15 of 100 objects is outside any regime the paper contemplates.)
        """
        if p.actions**2 <= 2 * p.db_size:
            assert eager.total_wait_rate(p) >= eager.total_deadlock_rate(p)
        else:
            assert eager.total_wait_rate(p) < eager.total_deadlock_rate(p)

    @SETTINGS
    @given(params_strategy, factor_strategy)
    def test_dilation_monotone_in_load(self, p, k):
        assert node_utilization(p.with_(tps=p.tps * k)) == pytest.approx(
            node_utilization(p) * k
        )
