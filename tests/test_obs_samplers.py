"""Tests for the windowed telemetry samplers and the Telemetry handle."""

import json

import pytest

from repro.analytic import ModelParameters
from repro.exceptions import ConfigurationError
from repro.faults import FaultPlan
from repro.harness import ExperimentConfig, run_experiment
from repro.obs.samplers import Telemetry, TimeSeries
from repro.sim.engine import Engine


# --------------------------------------------------------------------- #
# TimeSeries
# --------------------------------------------------------------------- #


def test_series_summary():
    series = TimeSeries("x")
    for t, v in [(1.0, 2.0), (2.0, 8.0), (3.0, 5.0)]:
        series.append(t, v)
    s = series.summary()
    assert s.count == 3
    assert s.minimum == 2.0
    assert s.maximum == 8.0
    assert s.mean == 5.0
    assert s.last == 5.0


def test_empty_series_summary_is_zero():
    s = TimeSeries("x").summary()
    assert (s.count, s.minimum, s.mean, s.maximum, s.last) == (0, 0, 0, 0, 0)


def test_series_roundtrip():
    series = TimeSeries("x")
    series.append(1.0, 3.0)
    series.append(2.0, 4.0)
    back = TimeSeries.from_dict(json.loads(json.dumps(series.to_dict())))
    assert back.name == "x"
    assert back.times == [1.0, 2.0]
    assert back.values == [3.0, 4.0]


def test_sparkline_shape():
    series = TimeSeries("x")
    for i in range(10):
        series.append(float(i), float(i))
    line = series.sparkline(width=10)
    assert len(line) == 10
    assert line[0] == " "  # zero level
    assert line[-1] == "@"  # peak level


def test_sparkline_all_zero_and_empty():
    series = TimeSeries("x")
    assert series.sparkline() == ""
    series.append(1.0, 0.0)
    series.append(2.0, 0.0)
    assert series.sparkline() == "  "


# --------------------------------------------------------------------- #
# Telemetry registration and sampling
# --------------------------------------------------------------------- #


def test_telemetry_rejects_bad_interval():
    with pytest.raises(ConfigurationError):
        Telemetry(interval=0)
    with pytest.raises(ConfigurationError):
        Telemetry(interval=-1.0)


def test_duplicate_series_name_rejected():
    telemetry = Telemetry()
    telemetry.gauge("depth", lambda: 0)
    with pytest.raises(ConfigurationError):
        telemetry.counter_rate("depth", lambda: 0)


def test_gauge_samples_instantaneous_value():
    telemetry = Telemetry(interval=1.0)
    box = {"v": 5}
    series = telemetry.gauge("depth", lambda: box["v"])
    telemetry.sample(1.0)
    box["v"] = 9
    telemetry.sample(2.0)
    assert series.values == [5.0, 9.0]


def test_counter_rate_is_per_window_delta():
    telemetry = Telemetry(interval=2.0)
    box = {"count": 0}
    series = telemetry.counter_rate("commits", lambda: box["count"])
    box["count"] = 10  # startup activity lands in window one
    telemetry.sample(2.0)
    box["count"] = 16
    telemetry.sample(4.0)
    telemetry.sample(6.0)  # idle window
    assert series.values == [5.0, 3.0, 0.0]


def test_marks_recorded():
    telemetry = Telemetry()
    telemetry.mark(3.0, "partition-start", left=[0], right=[1])
    doc = telemetry.to_dict()
    assert doc["marks"] == [
        {"time": 3.0, "label": "partition-start",
         "detail": {"left": [0], "right": [1]}}
    ]


# --------------------------------------------------------------------- #
# bounded tick scheduling
# --------------------------------------------------------------------- #


def test_schedule_tick_count_and_drain():
    engine = Engine()
    telemetry = Telemetry(interval=1.0)
    series = telemetry.gauge("x", lambda: 1)
    ticks = telemetry.schedule(engine, horizon=5.0)
    assert ticks == 5
    engine.run()  # must drain: ticks are pre-scheduled, not self-rescheduled
    assert engine.queued_events == 0
    assert series.times == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_schedule_partial_final_window():
    engine = Engine()
    telemetry = Telemetry(interval=2.0)
    series = telemetry.gauge("x", lambda: 1)
    telemetry.schedule(engine, horizon=5.0)
    engine.run()
    assert series.times == [2.0, 4.0, 5.0]


def test_schedule_guards():
    engine = Engine()
    telemetry = Telemetry()
    telemetry.schedule(engine, horizon=1.0)
    with pytest.raises(ConfigurationError):
        telemetry.schedule(engine, horizon=1.0)
    with pytest.raises(ConfigurationError):
        Telemetry().schedule(engine, horizon=0.0)


# --------------------------------------------------------------------- #
# end to end: the acceptance scenario
# --------------------------------------------------------------------- #


def test_partition_reconciliation_series_nonzero_after_onset():
    """Lazy-group N=8 under a partition: the reconciliation-rate series is
    visibly nonzero after the partition heals, and the fault timeline marks
    the onset."""
    params = ModelParameters(
        db_size=100, nodes=8, tps=8, actions=4, action_time=0.005
    )
    duration = 40.0
    plan = FaultPlan.from_spec(
        "partition=10", num_nodes=8, duration=duration
    )
    result = run_experiment(
        ExperimentConfig(
            strategy="lazy-group",
            params=params,
            duration=duration,
            seed=3,
            faults=plan,
            sample_interval=1.0,
        )
    )
    payload = result.extra["series"]
    assert json.loads(json.dumps(payload)) == payload  # JSON-serialisable

    marks = payload["marks"]
    onset = next(m["time"] for m in marks if m["label"] == "partition-start")
    assert any(m["label"] == "partition-heal" for m in marks)

    series = payload["series"]["reconciliation_rate"]
    after = [v for t, v in zip(series["times"], series["values"])
             if t > onset]
    assert sum(after) > 0, "no reconciliations observed after partition onset"

    # the per-node WAL gauges exist for every node
    for node in range(8):
        assert f"wal_active_txns/node{node}" in payload["series"]
    # store-and-forward backlog was visible while the partition was open
    assert max(payload["series"]["net_parked"]["values"]) > 0


def test_sampling_disabled_adds_no_series_and_little_overhead():
    """sample_interval=0 leaves no series behind; the instrumented paths
    (engine profiler check, telemetry=None plumbing) stay cheap.  The
    timing assertion is deliberately loose — CI machines are noisy."""
    import time

    params = ModelParameters(
        db_size=60, nodes=3, tps=5, actions=3, action_time=0.002
    )

    def run_once(interval):
        t0 = time.perf_counter()
        result = run_experiment(
            ExperimentConfig(
                strategy="lazy-group", params=params, duration=15.0,
                seed=0, sample_interval=interval,
            )
        )
        return result, time.perf_counter() - t0

    disabled, t_disabled = run_once(0.0)
    enabled, t_enabled = run_once(0.5)
    assert "series" not in disabled.extra
    assert "series" in enabled.extra
    # sampling off must not cost more than sampling on (plus generous noise)
    assert t_disabled <= t_enabled * 2.0 + 0.25


def test_telemetry_identical_results_with_and_without_sampling():
    """Observability must not perturb the simulation: same counters either
    way."""
    params = ModelParameters(
        db_size=60, nodes=4, tps=5, actions=3, action_time=0.002
    )

    def counters(interval):
        result = run_experiment(
            ExperimentConfig(
                strategy="lazy-group", params=params, duration=15.0,
                seed=7, sample_interval=interval,
            )
        )
        return result.metrics.as_dict()

    assert counters(0.0) == counters(1.0)
