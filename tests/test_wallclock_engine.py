"""Tests for the wall-clock kernel behind ``repro serve``.

The contract: the same Process/event/timeout API as the sim kernel, but
``now`` tracks ``time.monotonic`` and the dispatch loop is an asyncio
coroutine.  Wall-clock mode is strictly additive — the last test class
pins that nothing in the simulator defaults to it.
"""

import asyncio

import pytest

from repro.core import AlwaysAccept, NonNegativeOutputs, TwoTierSystem
from repro.core.tentative import TentativeStatus
from repro.exceptions import SimulationError
from repro.obs.profiler import Profiler
from repro.replication import SystemSpec
from repro.service import WallClockEngine
from repro.sim import Engine
from repro.sim.engine import _TIMEOUT_CACHE_LIMIT
from repro.txn.ops import IncrementOp


class TestDispatch:
    def test_synchronous_run_raises(self):
        engine = WallClockEngine()
        with pytest.raises(SimulationError):
            engine.run()

    def test_drains_and_returns_without_a_stop_event(self):
        engine = WallClockEngine()
        fired = []
        engine.schedule(0.0, fired.append, "a")
        engine.schedule(0.005, fired.append, "b")
        asyncio.run(engine.run_async())
        assert fired == ["a", "b"]
        assert engine.queued_events == 0

    def test_timer_order_respects_delays(self):
        engine = WallClockEngine()
        order = []
        engine.schedule(0.02, order.append, 2)
        engine.schedule(0.001, order.append, 1)
        engine.schedule_now(order.append, 0)
        asyncio.run(engine.run_async())
        assert order == [0, 1, 2]

    def test_now_advances_with_real_time(self):
        engine = WallClockEngine()
        engine.schedule(0.02, lambda: None)
        asyncio.run(engine.run_async())
        assert engine.now >= 0.02

    def test_processes_and_timeouts_run_like_the_sim_kernel(self):
        engine = WallClockEngine()
        trail = []

        def worker(tag):
            trail.append(("start", tag))
            yield engine.timeout(0.002)
            trail.append(("done", tag))

        engine.process(worker("x"))
        engine.process(worker("y"))
        asyncio.run(engine.run_async())
        assert trail[:2] == [("start", "x"), ("start", "y")]
        assert sorted(trail[2:]) == [("done", "x"), ("done", "y")]

    def test_external_submission_wakes_a_sleeping_loop(self):
        # the loop parks with nothing queued; a task on the same loop
        # schedules new work and the engine must pick it up without a kick
        engine = WallClockEngine()
        fired = []

        async def main():
            stop = asyncio.Event()
            runner = asyncio.create_task(engine.run_async(stop=stop))
            await asyncio.sleep(0.02)  # loop is now asleep, queue empty
            engine.schedule_now(fired.append, "woken")
            await asyncio.sleep(0.02)
            stop.set()
            engine.kick()
            await runner

        asyncio.run(main())
        assert fired == ["woken"]

    def test_wait_process_returns_the_process_value(self):
        engine = WallClockEngine()

        def worker():
            yield engine.timeout(0.001)
            return 42

        async def main():
            proc = engine.process(worker())
            future = engine.wait_process(proc)
            engine.kick()
            runner = asyncio.create_task(engine.run_async())
            value = await future
            await runner
            return value

        assert asyncio.run(main()) == 42

    def test_wait_process_delivers_failures(self):
        engine = WallClockEngine()

        def worker():
            yield engine.timeout(0.001)
            raise RuntimeError("boom")

        async def main():
            proc = engine.process(worker())
            future = engine.wait_process(proc)
            engine.kick()
            runner = asyncio.create_task(engine.run_async())
            try:
                await future
            finally:
                await runner

        with pytest.raises(RuntimeError, match="boom"):
            asyncio.run(main())

    def test_profiler_taps_wallclock_dispatch(self):
        engine = WallClockEngine()
        profiler = Profiler().install(engine)
        engine.schedule(0.0, lambda: None)
        engine.schedule(0.001, lambda: None)
        asyncio.run(engine.run_async())
        assert "lambda" in profiler.table() or engine.events_scheduled >= 2


class TestTwoTierOnWallClock:
    """The tentpole claim: the unmodified two-tier core on real time."""

    def _system(self, engine):
        spec = SystemSpec(num_nodes=3, db_size=20, action_time=0.0005,
                          initial_value=100, engine=engine)
        return TwoTierSystem(spec, num_base=1)

    def test_reconnect_exchange_converges_on_wall_clock(self):
        engine = WallClockEngine()
        system = self._system(engine)
        mobile = system.mobile(1)
        system.disconnect_mobile(1)
        mobile.submit_tentative([IncrementOp(0, -40)], AlwaysAccept())
        mobile.submit_tentative([IncrementOp(0, -40)], AlwaysAccept())
        asyncio.run(engine.run_async())  # tentative work, on real time
        system.reconnect_mobile(1)
        asyncio.run(engine.run_async())  # the reconnect exchange
        assert system.nodes[0].store.value(0) == 20
        assert system.base_divergence() == 0
        assert len(mobile.accepted_transactions) == 2

    def test_rejection_diagnostics_round_trip_on_wall_clock(self):
        engine = WallClockEngine()
        system = self._system(engine)
        mobile = system.mobile(1)
        system.disconnect_mobile(1)
        mobile.submit_tentative([IncrementOp(0, -150)], NonNegativeOutputs())
        asyncio.run(engine.run_async())
        system.reconnect_mobile(1)
        asyncio.run(engine.run_async())
        assert len(mobile.rejected_transactions) == 1
        record = mobile.rejected_transactions[0]
        notice = mobile.pop_notice(record.seq)
        assert notice is not None
        seq, status, why = notice
        assert status is TentativeStatus.REJECTED
        assert why  # the acceptance criterion's human-readable diagnostic


class TestWallClockIsAdditive:
    """Determinism safety: nothing defaults to the wall-clock kernel."""

    def test_system_spec_defaults_to_no_engine(self):
        assert SystemSpec(num_nodes=2, db_size=10).engine is None

    def test_default_system_builds_the_sim_kernel(self):
        system = TwoTierSystem(
            SystemSpec(num_nodes=2, db_size=10), num_base=1
        )
        assert type(system.engine) is Engine

    def test_wallclock_engine_is_opt_in_only(self):
        engine = WallClockEngine()
        system = TwoTierSystem(
            SystemSpec(num_nodes=2, db_size=10, engine=engine), num_base=1
        )
        assert system.engine is engine


class TestTimeoutCacheOverflow:
    """The ``_TIMEOUT_CACHE_LIMIT`` fix: a full cache hands back correct
    uncached Timeouts instead of thrashing the delays that repeat."""

    def test_repeated_delays_share_one_timeout(self):
        engine = Engine()
        assert engine.timeout(0.5) is engine.timeout(0.5)

    def test_overflow_returns_uncached_but_correct_timeouts(self):
        engine = Engine()
        # fill the cache with distinct delays
        for i in range(_TIMEOUT_CACHE_LIMIT):
            engine.timeout(1.0 + i)
        assert len(engine._timeout_cache) == _TIMEOUT_CACHE_LIMIT
        # the overflowing delay still works, is simply not cached
        extra = engine.timeout(9999.5)
        assert extra.delay == 9999.5
        assert len(engine._timeout_cache) == _TIMEOUT_CACHE_LIMIT
        assert engine.timeout(9999.5) is not extra
        # delays cached before the overflow still hit
        assert engine.timeout(1.0) is engine.timeout(1.0)

    def test_overflowed_timeouts_schedule_correctly(self):
        engine = Engine()
        for i in range(_TIMEOUT_CACHE_LIMIT + 10):
            engine.timeout(1.0 + i)  # overflow the cache
        fired = []

        def worker():
            yield engine.timeout(5000.0)  # uncached path
            fired.append(engine.now)

        engine.process(worker())
        engine.run()
        assert fired == [5000.0]
