"""Fixed-seed determinism fingerprints for the five strategies.

The kernel refactor contract is that seeded runs stay bit-for-bit identical
at the metrics level.  This module defines a canonical set of small
configurations (every strategy, with and without faults) and a
``fingerprint`` function that reduces one run to a comparable record:
the full metrics dict, the end-state divergence, the final clock, and a
SHA-256 over the formatted trace event sequence.

``tests/data/determinism_golden.json`` holds the committed fingerprints.
``tests/test_determinism_suite.py`` asserts (a) two runs of the same config
are byte-identical and (b) the current kernel still matches the goldens.

Regenerate the goldens after an *intentional* behaviour change with::

    PYTHONPATH=src python -m tests.determinism_helpers --write

and explain the regeneration in the commit message.

``tests/data/partial_golden.json`` holds the analogous fingerprints for a
partial placement (``hash:k=3``) run of every strategy; regenerate with
``--write-partial``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.analytic.parameters import ModelParameters
from repro.faults.plan import FaultPlan
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.experiment import STRATEGIES
from repro.network.message import reset_message_ids
from repro.sim.tracing import Tracer
from repro.txn.transaction import reset_txn_ids

GOLDEN_PATH = Path(__file__).parent / "data" / "determinism_golden.json"
PARTIAL_GOLDEN_PATH = Path(__file__).parent / "data" / "partial_golden.json"
_PARTIAL_SPEC = "hash:k=3"
_PARTIAL_NODES = 5

#: small but contended enough that every counter family ticks; the nonzero
#: message delay keeps real traffic on the wire so the fault tap matters
_PARAMS = ModelParameters(
    db_size=60, nodes=3, tps=4.0, actions=3, action_time=0.005,
    message_delay=0.002,
)
_DURATION = 15.0
_SEED = 42
_FAULT_SPEC = "drop=0.05,partition=2,crash=2"
_FAULT_SEED = 1


def case_names():
    """Deterministic list of case labels: strategy × {clean, faulted}."""
    names = []
    for strategy in STRATEGIES:
        names.append(f"{strategy}/clean")
        names.append(f"{strategy}/faulted")
    return names


def _case_params(strategy: str) -> ModelParameters:
    if strategy == "two-tier":
        # mobile day-cycles engage the tentative/acceptance machinery
        return _PARAMS.with_(disconnect_time=3.0, time_between_disconnects=3.0)
    return _PARAMS


def _build_config(name: str, tracer: Optional[Tracer]) -> ExperimentConfig:
    strategy, variant = name.split("/")
    params = _case_params(strategy)
    faults = None
    if variant == "faulted":
        num_nodes = params.nodes + (1 if strategy == "two-tier" else 0)
        faults = FaultPlan.from_spec(
            _FAULT_SPEC,
            num_nodes=num_nodes,
            duration=_DURATION,
            fault_seed=_FAULT_SEED,
        )
    return ExperimentConfig(
        strategy=strategy,
        params=params,
        duration=_DURATION,
        seed=_SEED,
        faults=faults,
        tracer=tracer,
    )


def partial_case_names():
    """One ``hash:k=3`` case per strategy, all on genuinely sharded stores."""
    return [f"{strategy}/partial" for strategy in STRATEGIES]


def _build_partial_config(name: str, tracer: Optional[Tracer]) -> ExperimentConfig:
    from repro.placement import Placement

    strategy = name.split("/")[0]
    if strategy == "two-tier":
        # a 4-node base tier so k=3 shards it, plus two cycling mobiles
        params = _case_params(strategy).with_(nodes=2)
        num_base = 4
    else:
        params = _case_params(strategy).with_(nodes=_PARTIAL_NODES)
        num_base = 1
    return ExperimentConfig(
        strategy=strategy,
        params=params,
        duration=_DURATION,
        seed=_SEED,
        num_base=num_base,
        placement=Placement.from_spec(_PARTIAL_SPEC),
        tracer=tracer,
    )


def fingerprint(name: str) -> Dict[str, Any]:
    """Run one canonical case and reduce it to a comparable record.

    Txn and message ids are process-global counters and appear in trace
    detail; resetting both makes each fingerprint independent of whatever
    ran earlier in the process (other cases, other tests).
    """
    reset_txn_ids()
    reset_message_ids()
    tracer = Tracer(limit=1_000_000)
    result = run_experiment(_build_config(name, tracer))
    trace_lines = "\n".join(e.format() for e in tracer.events())
    return {
        "metrics": {k: v for k, v in sorted(result.metrics.as_dict().items())},
        "divergence": result.divergence,
        "end_time": round(result.end_time, 9),
        "trace_events": len(tracer),
        "trace_sha256": hashlib.sha256(trace_lines.encode()).hexdigest(),
    }


def fingerprint_partial(name: str) -> Dict[str, Any]:
    """Like :func:`fingerprint` for the hash:k=3 cases; also pins the
    per-node shard sizes, which are part of the placement contract."""
    reset_txn_ids()
    reset_message_ids()
    tracer = Tracer(limit=1_000_000)
    result = run_experiment(_build_partial_config(name, tracer))
    trace_lines = "\n".join(e.format() for e in tracer.events())
    resident = result.extra["resident_objects"]
    return {
        "metrics": {k: v for k, v in sorted(result.metrics.as_dict().items())},
        "divergence": result.divergence,
        "end_time": round(result.end_time, 9),
        "trace_events": len(tracer),
        "trace_sha256": hashlib.sha256(trace_lines.encode()).hexdigest(),
        "resident_max": resident["max"],
        "resident_total": resident["total"],
    }


def load_golden() -> Dict[str, Any]:
    with GOLDEN_PATH.open(encoding="utf-8") as fh:
        return json.load(fh)


def load_partial_golden() -> Dict[str, Any]:
    with PARTIAL_GOLDEN_PATH.open(encoding="utf-8") as fh:
        return json.load(fh)


def _write(path: Path, golden: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(golden, fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_golden() -> Dict[str, Any]:
    golden = {name: fingerprint(name) for name in case_names()}
    _write(GOLDEN_PATH, golden)
    return golden


def write_partial_golden() -> Dict[str, Any]:
    golden = {name: fingerprint_partial(name) for name in partial_case_names()}
    _write(PARTIAL_GOLDEN_PATH, golden)
    return golden


if __name__ == "__main__":
    import sys

    if "--write" in sys.argv:
        golden = write_golden()
        print(f"wrote {len(golden)} fingerprints to {GOLDEN_PATH}")
    elif "--write-partial" in sys.argv:
        golden = write_partial_golden()
        print(f"wrote {len(golden)} fingerprints to {PARTIAL_GOLDEN_PATH}")
    else:
        raise SystemExit(
            "usage: python -m tests.determinism_helpers --write | --write-partial\n"
            "(regenerates tests/data/determinism_golden.json or "
            "tests/data/partial_golden.json)"
        )
