"""Tests for sweeps, exponent fitting, amplification, crossover."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analytic import ModelParameters, eager, lazy_master
from repro.analytic.scaling import (
    amplification,
    crossover,
    fit_exponent,
    safe_fit_exponent,
    sweep,
)
from repro.exceptions import ConfigurationError


@pytest.fixture()
def p():
    return ModelParameters(db_size=1000, nodes=1, tps=10, actions=4,
                           action_time=0.01)


class TestSweep:
    def test_sweep_evaluates_each_value(self, p):
        r = sweep(lambda q: q.nodes * 2.0, p, "nodes", [1, 3, 5])
        assert r.xs == (1.0, 3.0, 5.0)
        assert r.ys == (2.0, 6.0, 10.0)
        assert r.pairs() == [(1.0, 2.0), (3.0, 6.0), (5.0, 10.0)]

    def test_sweep_unknown_parameter_rejected(self, p):
        with pytest.raises(ConfigurationError):
            sweep(lambda q: 1.0, p, "bogus", [1])

    def test_sweep_empty_values_rejected(self, p):
        with pytest.raises(ConfigurationError):
            sweep(lambda q: 1.0, p, "nodes", [])

    def test_sweep_does_not_mutate_base(self, p):
        sweep(lambda q: 0.0, p, "nodes", [5, 10])
        assert p.nodes == 1


class TestFitExponent:
    @given(st.floats(0.5, 5.0), st.floats(0.01, 100.0))
    def test_recovers_exact_power_laws(self, k, c):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0]
        ys = [c * x**k for x in xs]
        assert fit_exponent(xs, ys) == pytest.approx(k, rel=1e-6)

    def test_negative_exponent(self):
        xs = [1, 2, 4, 8]
        ys = [1 / x for x in xs]
        assert fit_exponent(xs, ys) == pytest.approx(-1.0)

    def test_requires_two_positive_points(self):
        with pytest.raises(ConfigurationError):
            fit_exponent([1.0], [2.0])
        with pytest.warns(RuntimeWarning):
            with pytest.raises(ConfigurationError):
                fit_exponent([1.0, 2.0], [0.0, 0.0])

    def test_requires_distinct_x(self):
        with pytest.raises(ConfigurationError):
            fit_exponent([2.0, 2.0], [1.0, 4.0])

    def test_ignores_nonpositive_points(self):
        xs = [1, 2, 4, 8]
        ys = [1, 4, 0, 64]  # the zero point is dropped
        with pytest.warns(RuntimeWarning, match="dropped 1 of 4"):
            assert fit_exponent(xs, ys) == pytest.approx(2.0)

    def test_zero_cells_warn_but_fit_survives(self):
        # a short measured run produces zero-event cells; the fit must
        # drop them (with a warning) instead of crashing in log-space
        xs = [1, 2, 4, 8, 16]
        ys = [0.0, 0.0, 1.0, 8.0, 64.0]
        with pytest.warns(RuntimeWarning, match="zero, negative"):
            assert fit_exponent(xs, ys) == pytest.approx(3.0)

    def test_negative_and_nonfinite_cells_dropped(self):
        xs = [1, 2, 4, 8]
        ys = [-0.5, 4.0, float("nan"), float("inf")]
        with pytest.warns(RuntimeWarning, match="dropped 3 of 4"):
            with pytest.raises(ConfigurationError):
                fit_exponent(xs, ys)

    def test_clean_series_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fit_exponent([1.0, 2.0, 4.0], [1.0, 4.0, 16.0])


class TestSafeFitExponent:
    def test_matches_fit_exponent_on_clean_data(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [x**2.5 for x in xs]
        assert safe_fit_exponent(xs, ys) == pytest.approx(2.5)

    def test_none_on_all_zero_series(self):
        with pytest.warns(RuntimeWarning):
            assert safe_fit_exponent([1, 2, 4], [0.0, 0.0, 0.0]) is None

    def test_none_on_single_point(self):
        assert safe_fit_exponent([2.0], [4.0]) is None

    def test_none_on_degenerate_x(self):
        assert safe_fit_exponent([3.0, 3.0], [1.0, 2.0]) is None


class TestAmplification:
    def test_eager_headline(self, p):
        assert amplification(eager.total_deadlock_rate, p, "nodes", 10) == (
            pytest.approx(1000.0)
        )

    def test_amplification_keeps_int_fields_int(self, p):
        # nodes is an int field; factor 2.0 must still produce a valid model
        assert amplification(eager.total_deadlock_rate, p, "nodes", 2.0) == (
            pytest.approx(8.0)
        )

    def test_zero_base_rejected(self, p):
        with pytest.raises(ConfigurationError):
            amplification(lambda q: 0.0, p, "nodes", 10)


class TestCrossover:
    def test_finds_first_crossing(self, p):
        # eager deadlocks (N^3) overtake 2x lazy-master (N^2) at some N
        target = crossover(
            eager.total_deadlock_rate,
            lambda q: 2.0 * lazy_master.deadlock_rate(q),
            p,
            "nodes",
            range(1, 50),
        )
        assert target is not None
        q = p.with_(nodes=int(target))
        assert eager.total_deadlock_rate(q) > 2 * lazy_master.deadlock_rate(q)
        before = p.with_(nodes=int(target) - 1)
        assert eager.total_deadlock_rate(before) <= (
            2 * lazy_master.deadlock_rate(before)
        )

    def test_returns_none_when_never_crosses(self, p):
        assert crossover(
            lambda q: 1.0, lambda q: 2.0, p, "nodes", range(1, 10)
        ) is None
