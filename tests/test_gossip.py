"""Tests for the anti-entropy gossip driver."""

import pytest

from repro.exceptions import ConfigurationError
from repro.replication.convergent import ConvergentReplica
from repro.replication.gossip import GossipDriver
from repro.sim import Engine


def make(n=4, db_size=5):
    engine = Engine()
    replicas = [ConvergentReplica(i, db_size) for i in range(n)]
    return engine, replicas


def test_gossip_converges_replicas():
    engine, replicas = make()
    replicas[0].replace(0, 42)
    replicas[2].increment(1, 7)
    driver = GossipDriver(engine, replicas, period=1.0)
    driver.start(duration=20.0)
    engine.run()
    assert driver.converged()
    assert all(r.value(0) == 42 for r in replicas)
    assert all(r.value(1) == 7 for r in replicas)


def test_random_partner_gossip_converges_too():
    engine, replicas = make(n=6)
    for i, replica in enumerate(replicas):
        replica.increment(0, i + 1)
    driver = GossipDriver(engine, replicas, period=1.0,
                          random_partners=True, seed=3)
    driver.start(duration=40.0)
    engine.run()
    assert driver.converged()
    assert replicas[0].value(0) == sum(range(1, 7))


def test_round_robin_partner_never_self():
    engine, replicas = make(n=5)
    driver = GossipDriver(engine, replicas, period=1.0)
    stream = driver.rng.stream("x")
    for index in range(5):
        for round_number in range(12):
            assert driver._pick_partner(index, round_number, stream) != index


def test_random_partner_never_self():
    engine, replicas = make(n=5)
    driver = GossipDriver(engine, replicas, period=1.0, random_partners=True)
    stream = driver.rng.stream("partners/0")
    for round_number in range(50):
        assert driver._pick_partner(2, round_number, stream) != 2


def test_updates_during_gossip_still_converge_after_quiescence():
    engine, replicas = make()
    driver = GossipDriver(engine, replicas, period=0.5)
    driver.start(duration=30.0)

    def updater():
        for step in range(10):
            yield engine.timeout(1.0)
            replicas[step % 4].increment(2, 1)

    engine.process(updater())
    engine.run()
    assert driver.converged()
    assert replicas[0].value(2) == 10


def test_exchange_count_tracks_schedule():
    engine, replicas = make(n=2)
    driver = GossipDriver(engine, replicas, period=2.0)
    driver.start(duration=10.0)
    engine.run()
    # each of 2 replicas exchanges every 2s within 10s (minus stagger)
    assert 6 <= driver.exchanges <= 10


def test_slower_gossip_means_longer_divergence_window():
    def staleness(period):
        engine, replicas = make(n=3)
        driver = GossipDriver(engine, replicas, period=period)
        driver.start(duration=100.0)
        replicas[0].replace(0, 99)
        # run until everyone has the update, measure the time
        while not driver.converged() and engine.peek() is not None:
            engine.run(until=engine.peek())
        return engine.now

    assert staleness(5.0) > staleness(0.5)


def test_validation():
    engine, replicas = make(n=1)
    with pytest.raises(ConfigurationError):
        GossipDriver(engine, replicas, period=1.0)
    engine, replicas = make()
    with pytest.raises(ConfigurationError):
        GossipDriver(engine, replicas, period=0)
    driver = GossipDriver(engine, replicas, period=1.0)
    with pytest.raises(ConfigurationError):
        driver.start(duration=0)
