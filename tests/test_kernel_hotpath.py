"""Kernel hot-path refactor contracts.

Covers the refactor's satellite fixes and observability guarantees:

* ``schedule_at`` tolerates epsilon-negative float round-off,
* interrupted sleeps vanish from ``queued_events`` (and any telemetry
  gauge over it) immediately — no dead heap entries inflating depth,
* ``Timeout`` instances are cached per delay,
* the profiler still buckets the refactored resume path under meaningful
  process names (no ``<lambda>`` / ``partial`` collapse),
* the frozen legacy kernel stays importable and behaviourally equivalent
  on the basics (it is the perf gate's reference point).
"""

import pytest

from repro.exceptions import ProcessKilled, SimulationError
from repro.obs.profiler import Profiler, bucket_name
from repro.obs.samplers import Telemetry
from repro.sim import Engine


class TestScheduleAtEpsilon:
    def test_epsilon_negative_round_off_is_clamped(self):
        """An instant a few ULP in the past (float round-off, not a logic
        error) is clamped to "now" instead of raising."""
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.now == 1.0
        engine.schedule_at(1.0 - 1e-12, fired.append, "x")
        engine.run()
        assert fired == ["x"]
        assert engine.now == 1.0  # clamped to now, clock never went back

    def test_tick_schedule_survives_accumulated_drift(self):
        """A telemetry-style absolute tick schedule crossing an accumulated
        clock must never die with 'cannot schedule in the past'."""
        engine = Engine()
        ticks = []

        def advance():
            yield engine.timeout(0.1)

        for _ in range(10):
            engine.process(advance())
        engine.run()  # now == 10 * 0.1 with round-off
        for i in range(1, 4):
            engine.schedule_at(engine.now + i * 0.1, ticks.append, i)
        engine.schedule_at(engine.now, ticks.append, 0)  # exactly "now"
        engine.run()
        assert ticks == [0, 1, 2, 3]

    def test_genuinely_past_instants_still_raise(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)


class TestQueuedEventsTruthful:
    def test_interrupted_sleep_leaves_no_logical_entry(self):
        engine = Engine()

        def sleeper():
            try:
                yield engine.timeout(1000.0)
            except ProcessKilled:
                return "killed"

        p = engine.process(sleeper())
        engine.run(until=0.5)
        assert engine.queued_events == 1  # the armed timer
        p.interrupt()
        # the dead timer is excluded immediately; only the throw step counts
        assert engine.queued_events == 1
        engine.run(until=2.0)
        assert engine.queued_events == 0
        assert p.value == "killed"
        assert engine.now == 2.0

    def test_gauge_over_queued_events_never_sees_dead_timers(self):
        engine = Engine()
        telemetry = Telemetry(interval=1.0)
        series = telemetry.gauge("engine_queue", lambda: engine.queued_events)

        def sleeper():
            try:
                yield engine.timeout(1000.0)
            except ProcessKilled:
                return "killed"

        procs = [engine.process(sleeper()) for _ in range(5)]
        engine.run(until=0.5)
        telemetry.sample(engine.now)
        assert series.values[-1] == 5.0
        for p in procs:
            p.interrupt()
        telemetry.sample(engine.now)
        # 5 dead timers are invisible; 5 pending throw steps remain
        assert series.values[-1] == 5.0
        engine.run(until=2.0)
        telemetry.sample(engine.now)
        assert series.values[-1] == 0.0

    def test_heavy_interrupt_churn_compacts_the_heap(self):
        """Hundreds of cancelled sleeps must not leave a heap of corpses.

        Two interrupt waves: after wave A's throw steps have drained, the
        heap is mostly dead timers, so wave B's first cancellations cross
        the compaction threshold and the heap physically shrinks.
        """
        engine = Engine()
        wave_a = []
        wave_b = []

        def sleeper():
            try:
                yield engine.timeout(10_000.0)
            except ProcessKilled:
                return None

        for _ in range(300):
            wave_a.append(engine.process(sleeper()))
            wave_b.append(engine.process(sleeper()))

        def killer():
            yield engine.timeout(0.5)
            for p in wave_a:
                p.interrupt()
            yield engine.timeout(0.5)  # wave-a throw steps drain meanwhile
            for p in wave_b:
                p.interrupt()

        engine.process(killer())
        engine.run(until=2.0)
        assert engine.queued_events == 0
        assert len(engine._queue) == 0
        assert engine.now == 2.0
        assert all(p.settled for p in wave_a + wave_b)

    def test_experiment_series_include_engine_queue(self):
        from repro.analytic.parameters import ModelParameters
        from repro.harness import ExperimentConfig, run_experiment

        result = run_experiment(
            ExperimentConfig(
                strategy="eager-group",
                params=ModelParameters(
                    db_size=40, nodes=2, tps=5.0, actions=2, action_time=0.002
                ),
                duration=5.0,
                seed=3,
                sample_interval=1.0,
            )
        )
        series = result.extra["series"]["series"]
        assert "engine_queue" in series
        assert series["engine_queue"]["summary"]["count"] > 0


class TestTimeoutCache:
    def test_same_delay_shares_one_timeout(self):
        engine = Engine()
        assert engine.timeout(0.005) is engine.timeout(0.005)
        assert engine.timeout(0.005) is not engine.timeout(0.006)

    def test_cache_is_bounded(self):
        engine = Engine()
        for i in range(1000):
            engine.timeout(float(i))
        assert len(engine._timeout_cache) <= 256

    def test_negative_delay_still_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.timeout(-0.1)


class TestProfilerBucketing:
    def test_resume_path_buckets_under_process_names(self):
        """The refactored timer/step callbacks carry the process as their
        first argument, so the profiler buckets them by process name."""
        engine = Engine()
        profiler = Profiler().install(engine)

        def worker():
            yield engine.timeout(1.0)
            yield engine.timeout(1.0)

        engine.process(worker(), name="worker-7")
        engine.run()
        assert "worker" in profiler.buckets
        bad = [
            name
            for name in profiler.buckets
            if "<lambda>" in name or "partial" in name or "<locals>" in name
        ]
        assert not bad, f"opaque profile buckets: {bad}"

    def test_full_run_has_no_opaque_buckets(self):
        from repro.analytic.parameters import ModelParameters
        from repro.harness import ExperimentConfig, run_experiment

        profiler = Profiler()
        run_experiment(
            ExperimentConfig(
                strategy="lazy-master",
                params=ModelParameters(
                    db_size=40, nodes=3, tps=5.0, actions=2,
                    action_time=0.002, message_delay=0.001,
                ),
                duration=5.0,
                seed=3,
                profiler=profiler,
            )
        )
        assert profiler.total_dispatches > 0
        names = set(profiler.buckets)
        bad = [
            n for n in names
            if "<lambda>" in n or "partial" in n or "<locals>" in n
        ]
        assert not bad, f"opaque profile buckets: {bad}"
        # network handler processes keep their per-kind identity
        assert any(n.startswith("handler-") for n in names)
        # user transactions bucket under the strategy's txn name
        assert any("txn" in n for n in names)

    def test_direct_bucket_names_of_kernel_callbacks(self):
        engine = Engine()

        def worker():
            yield engine.timeout(1.0)

        proc = engine.process(worker(), name="replica-update@2")
        assert bucket_name(engine._step, (proc, None, None)) == "replica-update"
        assert bucket_name(
            engine._resume_timer, (proc, 0)
        ) == "replica-update"


class TestLegacyKernelReference:
    def test_legacy_kernel_runs_the_same_simulation(self):
        from repro.sim.legacy_kernel import LegacyEngine

        def program(engine):
            log = []

            def worker(tag):
                yield engine.timeout(1.0)
                log.append((tag, engine.now))
                yield engine.timeout(0.5)
                log.append((tag, engine.now))

            engine.process(worker("a"))
            engine.process(worker("b"))
            engine.run()
            return log, engine.now

        new_log, new_now = program(Engine())
        old_log, old_now = program(LegacyEngine())
        assert new_log == old_log
        assert new_now == old_now
