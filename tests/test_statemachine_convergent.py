"""Stateful hypothesis testing of the convergent (§6) replica.

Random interleavings of replaces, appends, increments, and one-directional
syncs; the machine checks monotone convergence invariants continuously and
full convergence at teardown.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.replication.convergent import (
    ConvergentReplica,
    diverged_objects,
    fully_sync,
)

N_REPLICAS = 3
OIDS = [0, 1]


class ConvergentMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.replicas = [ConvergentReplica(i, len(OIDS))
                         for i in range(N_REPLICAS)]
        self.total_increments = {oid: 0 for oid in OIDS}
        self.total_appends = {oid: 0 for oid in OIDS}

    @rule(replica=st.integers(0, N_REPLICAS - 1), oid=st.sampled_from(OIDS),
          value=st.integers(0, 100))
    def replace(self, replica, oid, value):
        self.replicas[replica].replace(oid, value)

    @rule(replica=st.integers(0, N_REPLICAS - 1), oid=st.sampled_from(OIDS),
          delta=st.integers(-10, 10))
    def increment(self, replica, oid, delta):
        self.replicas[replica].increment(oid, delta)
        self.total_increments[oid] += delta

    @rule(replica=st.integers(0, N_REPLICAS - 1), oid=st.sampled_from(OIDS),
          body=st.integers(0, 1000))
    def append(self, replica, oid, body):
        self.replicas[replica].append(oid, body)
        self.total_appends[oid] += 1

    @rule(src=st.integers(0, N_REPLICAS - 1),
          dst=st.integers(0, N_REPLICAS - 1))
    def one_way_sync(self, src, dst):
        if src != dst:
            self.replicas[dst].sync_from(self.replicas[src])

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #

    @invariant()
    def increment_sets_are_subsets_of_global(self):
        """No replica ever invents or duplicates an increment."""
        for oid in OIDS:
            all_keys = set()
            for replica in self.replicas:
                keys = set(replica.records[oid].increments.keys())
                assert len(keys) == len(replica.records[oid].increments)
                all_keys |= keys
            # every timestamp key is unique across the system
            assert len(all_keys) <= sum(
                1 for _ in all_keys
            )

    @invariant()
    def note_timestamps_unique_per_replica(self):
        for replica in self.replicas:
            for oid in OIDS:
                stamps = [n.ts for n in replica.notes(oid)]
                assert len(stamps) == len(set(stamps))

    def teardown(self):
        fully_sync(self.replicas)
        assert diverged_objects(self.replicas) == 0
        for oid in OIDS:
            # increments: exact conservation on top of the winning replace
            base = self.replicas[0].records[oid].value
            expected = base + self.total_increments[oid]
            for replica in self.replicas:
                assert replica.value(oid) == expected
            # appends: nothing lost
            for replica in self.replicas:
                assert len(replica.notes(oid)) == self.total_appends[oid]


ConvergentMachine.TestCase.settings = settings(
    max_examples=50, stateful_step_count=30, deadline=None
)
TestConvergentMachine = ConvergentMachine.TestCase
