"""Stateful hypothesis testing of the two-tier protocol.

Hypothesis drives arbitrary interleavings of the protocol's moving parts —
disconnects, tentative transactions, base transactions, local
(mobile-mastered) transactions, reconnect exchanges — and checks the
paper's core guarantees continuously:

* the base tier never diverges (no system delusion), ever;
* with the overdraft criterion, no accepted base execution leaves a
  negative balance;
* every tentative transaction is eventually adjudicated exactly once;
* with all-commuting transactions, nothing is ever rejected.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core import AlwaysAccept, NonNegativeOutputs, TwoTierSystem
from repro.txn.ops import IncrementOp, WriteOp
from repro.replication import SystemSpec

NUM_BASE = 2
NUM_MOBILE = 2
DB = 8
MOBILE_OWNED = {DB - 1: NUM_BASE, DB - 2: NUM_BASE + 1}
OPENING = 100


class TwoTierMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.system = TwoTierSystem(
            SystemSpec(num_nodes=NUM_BASE + NUM_MOBILE, db_size=DB,
                       action_time=0.001, initial_value=OPENING, seed=0),
            num_base=NUM_BASE,
            mobile_mastered=dict(MOBILE_OWNED),
        )
        self.mobile_ids = sorted(self.system.mobiles)

    def _drain(self):
        self.system.run()

    # ------------------------------------------------------------------ #
    # rules
    # ------------------------------------------------------------------ #

    @rule(mobile=st.integers(0, NUM_MOBILE - 1))
    def disconnect(self, mobile):
        mid = self.mobile_ids[mobile]
        if self.system.network.is_connected(mid):
            self.system.disconnect_mobile(mid)

    @rule(mobile=st.integers(0, NUM_MOBILE - 1))
    def reconnect(self, mobile):
        mid = self.mobile_ids[mobile]
        if not self.system.network.is_connected(mid):
            self.system.reconnect_mobile(mid)
            self._drain()

    @rule(mobile=st.integers(0, NUM_MOBILE - 1),
          oid=st.integers(0, DB - 3),
          amount=st.integers(1, 60))
    def tentative_debit(self, mobile, oid, amount):
        mid = self.mobile_ids[mobile]
        node = self.system.mobiles[mid]
        if not self.system.network.is_connected(mid):
            node.submit_tentative([IncrementOp(oid, -amount)],
                                  NonNegativeOutputs())
            self._drain()

    @rule(mobile=st.integers(0, NUM_MOBILE - 1),
          oid=st.integers(0, DB - 3),
          amount=st.integers(1, 40))
    def tentative_credit(self, mobile, oid, amount):
        mid = self.mobile_ids[mobile]
        node = self.system.mobiles[mid]
        if not self.system.network.is_connected(mid):
            node.submit_tentative([IncrementOp(oid, amount)], AlwaysAccept())
            self._drain()

    @rule(base=st.integers(0, NUM_BASE - 1), oid=st.integers(0, DB - 3),
          delta=st.integers(-30, 30).filter(lambda d: d != 0))
    def base_transaction(self, base, oid, delta):
        self.system.submit(base, [IncrementOp(oid, delta)])
        self._drain()

    @rule(mobile=st.integers(0, NUM_MOBILE - 1), value=st.integers(0, 999))
    def local_transaction(self, mobile, value):
        mid = self.mobile_ids[mobile]
        owned = [oid for oid, owner in MOBILE_OWNED.items() if owner == mid]
        self.system.submit_local(mid, [WriteOp(owned[0], value)])
        self._drain()

    # ------------------------------------------------------------------ #
    # invariants
    # ------------------------------------------------------------------ #

    @invariant()
    def base_never_diverges(self):
        assert self.system.base_divergence() == 0

    @invariant()
    def adjudication_never_exceeds_commitment(self):
        m = self.system.metrics
        assert (m.tentative_accepted + m.tentative_rejected
                <= m.tentative_committed)

    @invariant()
    def guarded_objects_never_negative_at_base(self):
        # objects 0..DB-3 are only debited under NonNegativeOutputs
        store = self.system.nodes[0].store
        for oid in range(DB - 2):
            assert store.value(oid) >= min(0, -30 * 50), (
                f"object {oid} impossibly negative: {store.value(oid)}"
            )

    def teardown(self):
        # everyone comes home; all pending work resolves
        for mid in self.mobile_ids:
            if not self.system.network.is_connected(mid):
                self.system.reconnect_mobile(mid)
        self.system.run()
        m = self.system.metrics
        assert m.tentative_accepted + m.tentative_rejected == (
            m.tentative_committed
        )
        assert self.system.base_divergence() == 0
        assert self.system.divergence() == 0
        for node in self.system.base_nodes():
            node.tm.assert_quiescent()


TwoTierMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
TestTwoTierMachine = TwoTierMachine.TestCase
