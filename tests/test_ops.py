"""Tests for the operation vocabulary, including commutativity properties."""

from hypothesis import given
from hypothesis import strategies as st

from repro.txn.ops import (
    AppendOp,
    IncrementOp,
    MultiplyOp,
    Operation,
    ReadOp,
    WriteOp,
    all_commute,
)


class TestSemantics:
    def test_read_is_identity(self):
        op = ReadOp(1)
        assert op.apply(42) == 42
        assert op.is_read
        assert op.commutative

    def test_write_overwrites(self):
        op = WriteOp(1, 99)
        assert op.apply(0) == 99
        assert op.apply(12345) == 99
        assert not op.commutative

    def test_increment_adds(self):
        op = IncrementOp(1, 5)
        assert op.apply(10) == 15
        assert op.apply(-5) == 0
        assert op.commutative

    def test_negative_increment(self):
        assert IncrementOp(1, -50).apply(1000) == 950

    def test_multiply_scales_and_does_not_commute(self):
        op = MultiplyOp(1, 1.1)
        assert op.apply(100) == 110.00000000000001 or abs(op.apply(100) - 110) < 1e-9
        assert not op.commutative

    def test_append_accumulates_sorted(self):
        op1 = AppendOp(1, "b")
        op2 = AppendOp(1, "a")
        value = op2.apply(op1.apply(()))
        assert value == ("a", "b")

    def test_append_treats_initial_zero_as_empty(self):
        assert AppendOp(1, "x").apply(0) == ("x",)


class TestEqualityAndHashing:
    def test_equal_ops_equal(self):
        assert WriteOp(1, 5) == WriteOp(1, 5)
        assert IncrementOp(2, 3) == IncrementOp(2, 3)
        assert hash(WriteOp(1, 5)) == hash(WriteOp(1, 5))

    def test_different_params_differ(self):
        assert WriteOp(1, 5) != WriteOp(1, 6)
        assert WriteOp(1, 5) != WriteOp(2, 5)
        assert IncrementOp(1, 5) != WriteOp(1, 5)

    def test_repr_is_informative(self):
        assert "IncrementOp" in repr(IncrementOp(3, 7))


class TestAllCommute:
    def test_empty_commutes(self):
        assert all_commute([])

    def test_increments_commute(self):
        assert all_commute([IncrementOp(1, 5), IncrementOp(2, -3), ReadOp(0)])

    def test_any_write_breaks_commutativity(self):
        assert not all_commute([IncrementOp(1, 5), WriteOp(2, 9)])


class TestCommutativityProperties:
    """The load-bearing property: ops marked commutative really commute."""

    @given(st.integers(-1000, 1000), st.integers(-100, 100),
           st.integers(-100, 100))
    def test_increments_commute_pairwise(self, start, d1, d2):
        a, b = IncrementOp(0, d1), IncrementOp(0, d2)
        assert a.apply(b.apply(start)) == b.apply(a.apply(start))

    @given(st.integers(-1000, 1000),
           st.lists(st.integers(-50, 50), min_size=1, max_size=8))
    def test_increment_sequences_commute_in_any_order(self, start, deltas):
        ops = [IncrementOp(0, d) for d in deltas]
        forward = start
        for op in ops:
            forward = op.apply(forward)
        backward = start
        for op in reversed(ops):
            backward = op.apply(backward)
        assert forward == backward

    @given(st.lists(st.integers(0, 100), min_size=0, max_size=6),
           st.integers(0, 100), st.integers(0, 100))
    def test_appends_commute_pairwise(self, base, x, y):
        start = tuple(sorted(base))
        a, b = AppendOp(0, x), AppendOp(0, y)
        assert a.apply(b.apply(start)) == b.apply(a.apply(start))

    @given(st.integers(-1000, 1000), st.integers(-100, 100),
           st.integers(-100, 100))
    def test_writes_do_not_commute_unless_equal(self, start, v1, v2):
        a, b = WriteOp(0, v1), WriteOp(0, v2)
        orders_agree = a.apply(b.apply(start)) == b.apply(a.apply(start))
        assert orders_agree == (v1 == v2)

    @given(st.integers(1, 100), st.integers(1, 10), st.integers(-50, 50))
    def test_multiply_vs_increment_order_matters(self, start, factor, delta):
        mul, inc = MultiplyOp(0, factor), IncrementOp(0, delta)
        lhs = mul.apply(inc.apply(start))
        rhs = inc.apply(mul.apply(start))
        # they differ whenever factor != 1 and delta != 0 — justifying the
        # conservative non-commutative marking of MultiplyOp
        if factor != 1 and delta != 0:
            assert lhs != rhs
