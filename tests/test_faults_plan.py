"""Tests for fault plans (parsing, validation, serialisation) and the
fault injector's wire tap."""

import json
import math

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    Crash,
    FaultInjector,
    FaultPlan,
    LinkFaults,
    Partition,
)
from repro.faults.plan import FOREVER
from repro.network import Network
from repro.sim import Engine, RandomSource


# --------------------------------------------------------------------- #
# component validation
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("field_", ["drop", "duplicate", "reorder"])
@pytest.mark.parametrize("value", [-0.1, 1.1])
def test_link_probabilities_must_be_in_unit_interval(field_, value):
    with pytest.raises(ConfigurationError):
        LinkFaults(**{field_: value})


def test_link_negative_delays_rejected():
    with pytest.raises(ConfigurationError):
        LinkFaults(jitter=-0.5)
    with pytest.raises(ConfigurationError):
        LinkFaults(reorder_window=-1.0)


def test_link_empty_and_lossless():
    assert LinkFaults().empty
    assert LinkFaults().lossless
    assert not LinkFaults(duplicate=0.5).empty
    assert LinkFaults(duplicate=0.5, reorder=0.5, jitter=0.1).lossless
    assert not LinkFaults(drop=0.01).lossless


def test_partition_validation():
    with pytest.raises(ConfigurationError):
        Partition(start=-1.0, duration=2.0, left=(0,), right=(1,))
    with pytest.raises(ConfigurationError):
        Partition(start=0.0, duration=0.0, left=(0,), right=(1,))
    with pytest.raises(ConfigurationError):
        Partition(start=0.0, duration=2.0, left=(), right=(1,))
    with pytest.raises(ConfigurationError):
        Partition(start=0.0, duration=2.0, left=(0, 1), right=(1, 2))


def test_partition_heal_properties():
    finite = Partition(start=1.0, duration=2.0, left=(0,), right=(1,))
    assert finite.heals
    assert finite.heal_time == 3.0
    forever = Partition(start=1.0, duration=FOREVER, left=(0,), right=(1,))
    assert not forever.heals


def test_crash_validation_and_properties():
    with pytest.raises(ConfigurationError):
        Crash(node=0, at=-1.0, downtime=1.0)
    with pytest.raises(ConfigurationError):
        Crash(node=0, at=0.0, downtime=0.0)
    crash = Crash(node=2, at=5.0, downtime=3.0)
    assert crash.recovers
    assert crash.recovery_time == 8.0
    assert not Crash(node=2, at=5.0, downtime=FOREVER).recovers


def test_overlapping_crash_windows_rejected():
    with pytest.raises(ConfigurationError):
        FaultPlan(crashes=(
            Crash(node=1, at=2.0, downtime=5.0),
            Crash(node=1, at=4.0, downtime=1.0),
        ))
    # back-to-back windows on one node, and overlap across *different*
    # nodes, are both fine
    FaultPlan(crashes=(
        Crash(node=1, at=2.0, downtime=2.0),
        Crash(node=1, at=4.0, downtime=1.0),
        Crash(node=0, at=3.0, downtime=10.0),
    ))


def test_plan_empty_and_lossless():
    assert FaultPlan().empty
    assert FaultPlan().lossless
    healing = FaultPlan(
        link=LinkFaults(duplicate=0.2),
        partitions=(Partition(start=1.0, duration=2.0, left=(0,), right=(1,)),),
        crashes=(Crash(node=1, at=1.0, downtime=2.0),),
    )
    assert not healing.empty
    assert healing.lossless
    assert not FaultPlan(link=LinkFaults(drop=0.1)).lossless
    assert not FaultPlan(
        partitions=(Partition(start=1.0, duration=FOREVER,
                              left=(0,), right=(1,)),)
    ).lossless
    assert not FaultPlan(
        crashes=(Crash(node=0, at=1.0, downtime=FOREVER),)
    ).lossless


def test_with_seed_changes_only_the_stream():
    plan = FaultPlan(link=LinkFaults(drop=0.1))
    reseeded = plan.with_seed(9)
    assert reseeded.fault_seed == 9
    assert reseeded.link == plan.link


# --------------------------------------------------------------------- #
# CLI spec parsing
# --------------------------------------------------------------------- #


def test_from_spec_link_keys():
    plan = FaultPlan.from_spec(
        "drop=0.1, dup=0.2, reorder=0.3, jitter=0.05",
        num_nodes=3, duration=20.0,
    )
    assert plan.link.drop == 0.1
    assert plan.link.duplicate == 0.2
    assert plan.link.reorder == 0.3
    assert plan.link.jitter == 0.05
    assert not plan.partitions and not plan.crashes
    # "duplicate" is an accepted alias for "dup"
    assert FaultPlan.from_spec(
        "duplicate=0.4", num_nodes=3, duration=20.0
    ).link.duplicate == 0.4


def test_from_spec_partition_splits_nodes_in_half():
    plan = FaultPlan.from_spec("partition=5", num_nodes=4, duration=20.0)
    (p,) = plan.partitions
    assert p.start == 5.0  # 25% of the run
    assert p.duration == 5.0
    assert p.left == (0, 1)
    assert p.right == (2, 3)


def test_from_spec_partition_forever():
    plan = FaultPlan.from_spec("partition=forever", num_nodes=3, duration=20.0)
    (p,) = plan.partitions
    assert math.isinf(p.duration)
    assert not p.heals


def test_from_spec_crash_targets_last_node():
    plan = FaultPlan.from_spec("crash=4", num_nodes=3, duration=20.0)
    (c,) = plan.crashes
    assert c.node == 2
    assert c.at == 5.0
    assert c.downtime == 4.0
    assert not FaultPlan.from_spec(
        "crash=forever", num_nodes=3, duration=20.0
    ).crashes[0].recovers


@pytest.mark.parametrize("spec", [
    "banana=1",          # unknown key
    "drop",              # missing value
    "drop=abc",          # not a number
    "partition=nope",    # not a number or 'forever'
    "partition=0",       # non-positive window
    "crash=-1",
    "drop=1.5",          # out-of-range probability (via LinkFaults)
])
def test_from_spec_rejects_bad_specs(spec):
    with pytest.raises(ConfigurationError):
        FaultPlan.from_spec(spec, num_nodes=3, duration=20.0)


def test_from_spec_partition_needs_two_nodes():
    with pytest.raises(ConfigurationError):
        FaultPlan.from_spec("partition=2", num_nodes=1, duration=20.0)


def test_from_spec_carries_fault_seed():
    plan = FaultPlan.from_spec("drop=0.1", num_nodes=3, duration=20.0,
                               fault_seed=7)
    assert plan.fault_seed == 7


# --------------------------------------------------------------------- #
# serialisation
# --------------------------------------------------------------------- #


def test_to_dict_round_trips_including_infinities():
    plan = FaultPlan(
        link=LinkFaults(drop=0.05, duplicate=0.1, reorder=0.2,
                        reorder_window=0.3, jitter=0.01),
        partitions=(
            Partition(start=2.0, duration=FOREVER, left=(0,), right=(1, 2)),
        ),
        crashes=(Crash(node=2, at=5.0, downtime=FOREVER),),
        fault_seed=3,
    )
    data = plan.to_dict()
    # strict JSON (the cache-key serialiser rejects NaN/Infinity tokens)
    encoded = json.dumps(data, sort_keys=True, allow_nan=False)
    assert FaultPlan.from_dict(json.loads(encoded)) == plan


def test_to_dict_is_deterministic():
    plan = FaultPlan.from_spec("drop=0.05,partition=2", num_nodes=3,
                               duration=20.0)
    assert plan.to_dict() == plan.to_dict()
    assert FaultPlan.from_dict(plan.to_dict()) == plan


# --------------------------------------------------------------------- #
# injector wire tap
# --------------------------------------------------------------------- #


class _StubSystem:
    """The minimal surface the injector needs: engine, network, rng, trace."""

    def __init__(self, num_nodes=3, seed=7, message_delay=0.0):
        self.engine = Engine()
        self.network = Network(self.engine, num_nodes,
                               message_delay=message_delay)
        self.rng = RandomSource(seed)

    def _trace(self, category, **detail):
        pass


def _faulty_net(plan, num_nodes=3, seed=7, message_delay=0.0):
    system = _StubSystem(num_nodes=num_nodes, seed=seed,
                         message_delay=message_delay)
    injector = FaultInjector(system, plan).install()
    inboxes = {i: [] for i in range(num_nodes)}
    for i in range(num_nodes):
        system.network.register(i, lambda msg, i=i: inboxes[i].append(msg))
    return system, injector, inboxes


def test_drop_one_loses_every_message():
    system, injector, inboxes = _faulty_net(FaultPlan(link=LinkFaults(drop=1.0)))
    for i in range(5):
        system.network.send(0, 1, "seq", i)
    system.engine.run()
    assert inboxes[1] == []
    assert injector.dropped == 5
    assert system.network.messages_delivered == 0


def test_duplicate_one_delivers_everything_twice():
    system, injector, inboxes = _faulty_net(
        FaultPlan(link=LinkFaults(duplicate=1.0))
    )
    system.network.send(0, 1, "ping", "x")
    system.engine.run()
    assert [m.payload for m in inboxes[1]] == ["x", "x"]
    assert injector.duplicated == 1


def test_self_sends_are_exempt_from_link_faults():
    # retry timers are modelled as self-sends; they never touch a link, so
    # even drop=1.0 must not eat them
    system, injector, inboxes = _faulty_net(FaultPlan(link=LinkFaults(drop=1.0)))
    system.network.send(1, 1, "timer", "tick")
    system.engine.run()
    assert [m.payload for m in inboxes[1]] == ["tick"]
    assert injector.dropped == 0


def test_jitter_delays_within_bounds():
    system, injector, inboxes = _faulty_net(
        FaultPlan(link=LinkFaults(jitter=0.5))
    )
    for i in range(10):
        system.network.send(0, 1, "seq", i)
    system.engine.run()
    assert len(inboxes[1]) == 10
    assert injector.delayed == 10
    for msg in inboxes[1]:
        assert 0.0 < msg.deliver_time <= 0.5


def test_same_seed_gives_identical_fault_decisions():
    plan = FaultPlan(link=LinkFaults(drop=0.5, duplicate=0.3, jitter=0.1))

    def run(seed):
        system, injector, inboxes = _faulty_net(plan, seed=seed)
        for i in range(100):
            system.network.send(0, 1, "seq", i)
        system.engine.run()
        return [(m.payload, m.deliver_time) for m in inboxes[1]], injector.stats()

    assert run(7) == run(7)


def test_different_fault_seed_reshuffles_decisions():
    link = LinkFaults(drop=0.5)

    def run(fault_seed):
        system, _, inboxes = _faulty_net(
            FaultPlan(link=link, fault_seed=fault_seed)
        )
        for i in range(100):
            system.network.send(0, 1, "seq", i)
        system.engine.run()
        return [m.payload for m in inboxes[1]]

    assert run(0) != run(99)


def test_install_twice_rejected():
    system = _StubSystem()
    injector = FaultInjector(system, FaultPlan(link=LinkFaults(drop=0.1)))
    injector.install()
    with pytest.raises(ConfigurationError):
        injector.install()


def test_one_injector_per_network():
    system = _StubSystem()
    FaultInjector(system, FaultPlan(link=LinkFaults(drop=0.1))).install()
    with pytest.raises(ConfigurationError):
        FaultInjector(system, FaultPlan(link=LinkFaults(drop=0.2))).install()


def test_empty_link_plan_skips_the_wire_tap():
    # a timetable-only plan (partitions/crashes) leaves the hot message
    # path untouched
    plan = FaultPlan(
        partitions=(Partition(start=1.0, duration=1.0, left=(0,), right=(1,)),)
    )
    system = _StubSystem()
    FaultInjector(system, plan).install()
    assert system.network.fault_injector is None


def test_partition_timeline_cuts_and_heals_on_schedule():
    plan = FaultPlan(
        partitions=(
            Partition(start=1.0, duration=2.0, left=(0,), right=(1, 2)),
        )
    )
    system, injector, inboxes = _faulty_net(plan)
    engine = system.engine
    delivered_early = []
    engine.schedule_at(0.5, lambda: system.network.send(0, 1, "pre", "a"))
    engine.schedule_at(
        0.9, lambda: delivered_early.append(len(inboxes[1]))
    )
    engine.schedule_at(2.0, lambda: system.network.send(0, 2, "mid", "b"))
    engine.schedule_at(
        2.5, lambda: delivered_early.append(len(inboxes[2]))
    )
    engine.run()
    # before the cut: immediate delivery; during: parked; after heal: flushed
    assert delivered_early == [1, 0]
    assert [m.payload for m in inboxes[2]] == ["b"]
    assert inboxes[2][0].deliver_time == pytest.approx(3.0)
    assert injector.partitions_started == 1
    assert injector.partitions_healed == 1
