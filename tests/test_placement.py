"""Placement layer: rendezvous hashing determinism, balance, stability.

The :class:`~repro.placement.HashShardPlacement` contract:

* pure function of (seed, oid, node) — the same spec bound twice, or in
  two different processes, yields identical replica sets;
* highest-random-weight selection spreads the ``k`` replicas of a uniform
  keyspace evenly across nodes (balance within ±20% of the mean);
* adding a node moves only ~k/(N+1) of all (object, replica) assignments
  — the minimal-disruption property that makes HRW a *stable* placement.
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.placement import FullReplication, HashShardPlacement, Placement


# --------------------------------------------------------------------- #
# spec strings and serialisation
# --------------------------------------------------------------------- #


def test_from_spec_full():
    spec = Placement.from_spec("full")
    assert isinstance(spec, FullReplication)
    assert spec.spec() == "full"


def test_from_spec_hash_variants():
    assert Placement.from_spec("hash:k=3") == HashShardPlacement(
        replication_factor=3
    )
    assert Placement.from_spec("hash:k=3,seed=7") == HashShardPlacement(
        replication_factor=3, placement_seed=7
    )
    assert Placement.from_spec("hash:replication_factor=2") == (
        HashShardPlacement(replication_factor=2)
    )
    # bare "hash" takes the default factor
    assert Placement.from_spec("hash") == HashShardPlacement()


def test_spec_round_trips_through_string_and_dict():
    for spec in (
        FullReplication(),
        HashShardPlacement(replication_factor=3),
        HashShardPlacement(replication_factor=2, placement_seed=9),
    ):
        assert Placement.from_spec(spec.spec()) == spec
        assert Placement.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("bad", [
    "hash:k=0", "hash:k=x", "hash:wat=3", "mesh:k=3", "full:k=3",
])
def test_bad_specs_are_rejected(bad):
    with pytest.raises(ConfigurationError):
        Placement.from_spec(bad)


def test_from_dict_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        Placement.from_dict({"kind": "mesh"})


# --------------------------------------------------------------------- #
# full replication binding
# --------------------------------------------------------------------- #


def test_full_replication_masters_round_robin():
    bound = FullReplication().bind(num_nodes=4, db_size=20)
    assert bound.is_full
    assert bound.replication_factor == 4
    for oid in range(20):
        assert bound.replicas(oid) == (0, 1, 2, 3)
        assert bound.master(oid) == oid % 4
    assert bound.objects_at(2) is None  # None means "everything"


# --------------------------------------------------------------------- #
# hash placement: determinism
# --------------------------------------------------------------------- #


def test_hash_placement_is_deterministic_across_bindings():
    a = HashShardPlacement(replication_factor=3).bind(100, 500)
    b = HashShardPlacement(replication_factor=3).bind(100, 500)
    for oid in range(500):
        assert a.replicas(oid) == b.replicas(oid)
        assert a.master(oid) == b.master(oid)


def test_hash_placement_seed_changes_layout():
    a = HashShardPlacement(replication_factor=3).bind(20, 200)
    b = HashShardPlacement(replication_factor=3, placement_seed=1).bind(20, 200)
    assert any(a.replicas(oid) != b.replicas(oid) for oid in range(200))


def test_replicas_are_distinct_master_first():
    bound = HashShardPlacement(replication_factor=3).bind(10, 100)
    for oid in range(100):
        replicas = bound.replicas(oid)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3
        assert replicas[0] == bound.master(oid)
        for node in replicas:
            assert bound.is_replica(oid, node)


def test_factor_capped_at_node_count_degrades_to_full():
    bound = HashShardPlacement(replication_factor=5).bind(3, 50)
    assert bound.is_full
    assert bound.replication_factor == 3
    assert bound.objects_at(1) is None


# --------------------------------------------------------------------- #
# balance
# --------------------------------------------------------------------- #


def test_shards_balance_within_20_percent():
    nodes, db, k = 100, 10_000, 3
    bound = HashShardPlacement(replication_factor=k).bind(nodes, db)
    counts = bound.resident_counts()
    assert sum(counts) == k * db
    mean = k * db / nodes
    for node, count in enumerate(counts):
        assert abs(count - mean) <= 0.2 * mean, (
            f"node {node} holds {count} objects; mean is {mean:.0f}"
        )


# --------------------------------------------------------------------- #
# stability under node addition (the HRW minimal-disruption property)
# --------------------------------------------------------------------- #


def test_adding_a_node_moves_few_assignments():
    db, k = 2_000, 3
    before = HashShardPlacement(replication_factor=k).bind(20, db)
    after = HashShardPlacement(replication_factor=k).bind(21, db)
    moved = sum(
        len(set(before.replicas(oid)) - set(after.replicas(oid)))
        for oid in range(db)
    )
    total = k * db
    expected_fraction = k / 21  # each of an object's k slots moves w.p. ~1/(N+1)
    assert moved / total < 2 * expected_fraction, (
        f"{moved}/{total} assignments moved; HRW should move ~{expected_fraction:.1%}"
    )
    # and the surviving assignments are untouched: every object keeps at
    # least k-1 of its old replicas on average
    kept = total - moved
    assert kept / total > 1 - 2 * expected_fraction


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        HashShardPlacement(replication_factor=0)
    with pytest.raises(ConfigurationError):
        HashShardPlacement(replication_factor=3, placement_seed=-1)
    with pytest.raises(ConfigurationError):
        HashShardPlacement(replication_factor=3).bind(0, 10)
    with pytest.raises(ConfigurationError):
        FullReplication().bind(3, 0)
