"""Failure-injection tests: the system under adversity.

Disconnections mid-flight, reordered propagation, participant refusals,
deadlock storms — the invariants (convergence after heal, no lost locks,
base-tier consistency) must hold through all of it.
"""

import pytest

from repro.core import AlwaysAccept, NonNegativeOutputs, TwoTierSystem
from repro.replication.eager_group import EagerGroupSystem
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.lazy_master import LazyMasterSystem
from repro.txn.ops import IncrementOp, WriteOp
from repro.replication import SystemSpec


class TestMidFlightDisconnects:
    def test_lazy_group_node_dies_during_propagation_and_heals(self):
        system = LazyGroupSystem(
            SystemSpec(num_nodes=3, db_size=10, action_time=0.001,
                       message_delay=2.0, seed=1),
        )
        system.submit(0, [WriteOp(0, 1)])
        system.run(until=1.0)  # replica updates still in flight
        system.network.disconnect(2)
        system.run()  # node 2 missed the update
        assert system.nodes[2].store.value(0) == 0
        system.network.reconnect(2)
        system.run()
        assert system.converged()

    def test_lazy_master_slave_dies_and_heals_mid_broadcast(self):
        system = LazyMasterSystem(
            SystemSpec(num_nodes=3, db_size=9, action_time=0.001,
                       message_delay=1.0, seed=2),
        )
        system.submit(0, [WriteOp(0, 11)])  # master: node 0
        system.run(until=0.5)
        system.network.disconnect(1)
        system.submit(0, [WriteOp(0, 22)])  # second update while 1 is dark
        system.run()
        assert system.nodes[1].store.value(0) == 0
        system.network.reconnect(1)
        system.run()
        assert system.nodes[1].store.value(0) == 22
        assert system.converged()

    def test_repeated_flapping_still_converges(self):
        system = LazyGroupSystem(
            SystemSpec(num_nodes=3, db_size=6, action_time=0.001,
                       message_delay=0.5, seed=3),
        )
        for round_number in range(5):
            victim = round_number % 3
            system.network.disconnect(victim)
            system.submit((victim + 1) % 3, [IncrementOp(0, 1)])
            system.run()
            system.network.reconnect(victim)
            system.run()
        assert system.converged()
        for node in system.nodes:
            node.tm.assert_quiescent()


class TestReorderedPropagation:
    def test_out_of_order_slave_updates_converge_by_timestamp(self):
        """A slow first broadcast arrives after a fast second one; the stale
        install must be suppressed, not regress the replica."""
        system = LazyMasterSystem(
            SystemSpec(num_nodes=2, db_size=4, action_time=0.0, seed=4),
        )
        oid = 0  # mastered at node 0
        # send the first update with a large extra delay by disconnecting
        # the slave so the first broadcast parks, then committing a second
        system.network.disconnect(1)
        system.submit(0, [WriteOp(oid, 1)])
        system.run()
        system.submit(0, [WriteOp(oid, 2)])
        system.run()
        system.network.reconnect(1)  # both arrive now, in order
        system.run()
        assert system.nodes[1].store.value(oid) == 2
        assert system.converged()

    def test_duplicate_and_stale_deliveries_are_harmless(self):
        from repro.replication.base import ReplicaUpdate

        system = LazyMasterSystem(
            SystemSpec(num_nodes=2, db_size=4, action_time=0.0, seed=5),
        )
        p = system.submit(0, [WriteOp(1, 7)])
        system.run()
        txn = p.value
        updates = [
            ReplicaUpdate(oid=u.oid, old_ts=u.old_ts, new_ts=u.new_ts,
                          new_value=u.new_value, op=u.op,
                          root_txn_id=txn.txn_id)
            for u in txn.updates
        ]
        before = system.nodes[1].store.snapshot()
        for _ in range(3):  # triple delivery
            system.network.send(0, 1, "slave-update", (updates, 0))
        system.run()
        assert system.nodes[1].store.snapshot() == before
        assert system.converged()


class TestDeadlockStorms:
    def test_all_pairs_opposite_orders(self):
        system = EagerGroupSystem(
            SystemSpec(num_nodes=4, db_size=3, action_time=0.002, seed=6),
        )
        submitted = 0
        for origin in range(4):
            system.submit(origin, [WriteOp(0, origin), WriteOp(1, origin),
                                   WriteOp(2, origin)])
            system.submit(origin, [WriteOp(2, origin), WriteOp(1, origin),
                                   WriteOp(0, origin)])
            submitted += 2
        system.run()
        assert system.metrics.commits + system.metrics.aborts == submitted
        assert system.converged()
        for node in system.nodes:
            node.tm.assert_quiescent()

    def test_retry_until_success_under_storm(self):
        system = EagerGroupSystem(
            SystemSpec(num_nodes=3, db_size=2, action_time=0.002, seed=7,
                       retry_deadlocks=True, max_retries=100),
        )
        processes = []
        for origin in range(3):
            for _ in range(4):
                processes.append(
                    system.submit(origin, [IncrementOp(0, 1),
                                           IncrementOp(1, 1)])
                )
        system.run()
        committed = sum(
            1 for p in processes if p.value.state.value == "committed"
        )
        assert committed == 12  # retries eventually pushed everything through
        assert system.nodes[0].store.value(0) == 12
        assert system.converged()


class TestTwoTierAdversity:
    def test_mobile_disconnects_again_before_notices_arrive(self):
        system = TwoTierSystem(
            SystemSpec(num_nodes=2, db_size=4, action_time=0.001,
                       message_delay=1.0, initial_value=100),
            num_base=1,
        )
        mobile = system.mobile(1)
        system.disconnect_mobile(1)
        mobile.submit_tentative([IncrementOp(0, -10)], AlwaysAccept())
        system.run()
        system.reconnect_mobile(1)
        system.run(until=system.engine.now + 0.1)  # notice still in flight
        system.disconnect_mobile(1)  # drops off again; notice parks
        system.run()
        assert mobile.notices == []
        system.network.reconnect(1)
        system.run()
        assert len(mobile.notices) == 1  # delivered on the next sync
        assert system.base_divergence() == 0

    def test_base_node_load_during_replay_storm(self):
        system = TwoTierSystem(
            SystemSpec(num_nodes=6, db_size=6, action_time=0.001,
                       initial_value=50, seed=8),
            num_base=2,
        )
        for mid in system.mobiles:
            system.disconnect_mobile(mid)
        for mobile in system.mobiles.values():
            for _ in range(5):
                mobile.submit_tentative([IncrementOp(0, -2)],
                                        NonNegativeOutputs())
        system.run()
        # everyone reconnects at the same instant: replay storm at the bases
        for mid in system.mobiles:
            system.reconnect_mobile(mid)
        system.run()
        total = system.metrics.tentative_accepted + \
            system.metrics.tentative_rejected
        assert total == 20
        # 50 / 2 = 25 debits would fit; all 20 were submitted, all accepted
        assert system.metrics.tentative_accepted == 20
        assert system.nodes[0].store.value(0) == 10
        assert system.base_divergence() == 0
        assert system.divergence() == 0
