"""Tests for MobileNode details not covered by the protocol tests."""

import pytest

from repro.core import AlwaysAccept, TwoTierSystem
from repro.core.tentative import TentativeStatus
from repro.exceptions import InvalidStateError
from repro.txn.ops import IncrementOp, ReadOp, WriteOp
from repro.replication import SystemSpec


def make(**kw):
    num_base = kw.pop("num_base", 1)
    num_mobile = kw.pop("num_mobile", 2)
    kw.setdefault("db_size", 10)
    kw.setdefault("action_time", 0.001)
    kw.setdefault("initial_value", 100)
    extras = {k: kw.pop(k) for k in ("mobile_mastered", "cascade_rejections")
              if k in kw}
    return TwoTierSystem(SystemSpec(num_nodes=num_base + num_mobile, **kw),
                         num_base=num_base, **extras)


def test_connected_property_tracks_network():
    system = make()
    mobile = system.mobile(1)
    assert mobile.connected
    system.disconnect_mobile(1)
    assert not mobile.connected
    system.network.reconnect(1)
    assert mobile.connected


def test_require_disconnected():
    system = make()
    mobile = system.mobile(1)
    with pytest.raises(InvalidStateError):
        mobile.require_disconnected()
    system.disconnect_mobile(1)
    mobile.require_disconnected()  # fine now


def test_tentative_sequence_numbers_increase():
    system = make()
    mobile = system.mobile(1)
    system.disconnect_mobile(1)
    p1 = mobile.submit_tentative([IncrementOp(0, -1)], AlwaysAccept())
    p2 = mobile.submit_tentative([IncrementOp(0, -1)], AlwaysAccept())
    system.run()
    assert p2.value.seq > p1.value.seq


def test_tentative_read_sees_own_earlier_writes():
    system = make()
    mobile = system.mobile(1)
    system.disconnect_mobile(1)
    mobile.submit_tentative([WriteOp(3, 42)], AlwaysAccept())
    p = mobile.submit_tentative([ReadOp(3)], AlwaysAccept())
    system.run()
    # the read op returned the tentative value; reads are not outputs
    assert p.value.tentative_outputs == []
    assert mobile.read(3) == 42


def test_tentative_commit_time_recorded():
    system = make()
    mobile = system.mobile(1)
    system.disconnect_mobile(1)
    p = mobile.submit_tentative([IncrementOp(0, -1)], AlwaysAccept())
    system.run()
    assert p.value.commit_time > 0


def test_log_partitions_by_status():
    system = make()
    mobile = system.mobile(1)
    system.disconnect_mobile(1)
    mobile.submit_tentative([IncrementOp(0, -150)], AlwaysAccept())
    system.run()
    assert len(mobile.pending_transactions) == 1
    assert mobile.accepted_transactions == []
    system.reconnect_mobile(1)
    system.run()
    assert mobile.pending_transactions == []
    assert len(mobile.accepted_transactions) == 1


def test_reconnect_with_no_pending_work_is_clean():
    system = make()
    system.disconnect_mobile(1)
    p = system.reconnect_mobile(1)
    system.run()
    assert p.value == []
    assert system.base_divergence() == 0


def test_second_reconnect_does_not_replay_again():
    system = make()
    mobile = system.mobile(1)
    system.disconnect_mobile(1)
    mobile.submit_tentative([IncrementOp(0, -10)], AlwaysAccept())
    system.run()
    system.reconnect_mobile(1)
    system.run()
    assert system.nodes[0].store.value(0) == 90
    # disconnect and reconnect again without new work
    system.disconnect_mobile(1)
    p = system.reconnect_mobile(1)
    system.run()
    assert p.value == []  # nothing pending was replayed
    assert system.nodes[0].store.value(0) == 90  # not double-applied
    assert system.metrics.tentative_accepted == 1


def test_two_mobiles_have_independent_tentative_views():
    system = make()
    m1, m2 = system.mobile(1), system.mobile(2)
    system.disconnect_mobile(1)
    system.disconnect_mobile(2)
    m1.submit_tentative([IncrementOp(0, -30)], AlwaysAccept())
    system.run()
    assert m1.read(0) == 70
    assert m2.read(0) == 100  # unaffected


def test_notices_accumulate_in_order():
    system = make()
    mobile = system.mobile(1)
    system.disconnect_mobile(1)
    mobile.submit_tentative([IncrementOp(0, -10)], AlwaysAccept(), label="a")
    mobile.submit_tentative([IncrementOp(0, -10)], AlwaysAccept(), label="b")
    system.run()
    system.reconnect_mobile(1)
    system.run()
    assert len(mobile.notices) == 2
    seqs = [seq for seq, _, _ in mobile.notices]
    assert seqs == sorted(seqs)
    assert all(status is TentativeStatus.ACCEPTED
               for _, status, _ in mobile.notices)
