"""A full 'day in the life' integration scenario.

One sustained run exercising every layer at once: a base cluster serves
connected OLTP traffic under lazy-master rules while a mobile fleet cycles
through disconnect/tentative-work/reconnect, prices shift under the
salesmen, and the run ends with the complete invariant battery.
"""

import pytest

from repro.core import (
    AlwaysAccept,
    NonNegativeOutputs,
    TwoTierSystem,
)
from repro.txn.ops import IncrementOp
from repro.verify.invariants import check_all, conservation_total
from repro.workload.generator import WorkloadGenerator
from repro.workload.mobile_cycle import MobileCycleDriver
from repro.workload.profiles import uniform_update_profile
from repro.replication import SystemSpec

BASES = 3
MOBILES = 4
DB = 60
OPENING_BALANCE = 1000
DAY = 120.0


@pytest.fixture(scope="module")
def completed_day():
    system = TwoTierSystem(
        SystemSpec(num_nodes=BASES + MOBILES, db_size=DB, action_time=0.001,
                   seed=42, initial_value=OPENING_BALANCE),
        num_base=BASES,
    )

    # connected OLTP at the bases (commutative debits/credits)
    oltp = WorkloadGenerator(
        system,
        uniform_update_profile(actions=2, db_size=DB, commutative=True),
        tps=2.0,
        node_ids=list(range(BASES)),
    )
    oltp.start(DAY)

    # the mobile fleet cycles all day with overdraft-guarded tentative work
    fleet = MobileCycleDriver(
        system,
        uniform_update_profile(actions=2, db_size=DB, commutative=True),
        tps=1.0,
        disconnect_time=10.0,
        connected_time=1.0,
        acceptance=NonNegativeOutputs(),
    )
    fleet.start(DAY)

    system.run()
    return system, oltp, fleet


def test_everyone_did_real_work(completed_day):
    system, oltp, fleet = completed_day
    assert system.metrics.commits > 200  # OLTP + accepted replays
    assert system.metrics.tentative_committed > 30
    assert fleet.cycles_completed >= MOBILES * 8


def test_every_tentative_transaction_adjudicated(completed_day):
    system, _, _ = completed_day
    adjudicated = (system.metrics.tentative_accepted
                   + system.metrics.tentative_rejected)
    assert adjudicated == system.metrics.tentative_committed


def test_no_balance_went_negative(completed_day):
    system, _, _ = completed_day
    # NonNegativeOutputs guarded every mobile debit; OLTP increments are
    # symmetric around small values on a large opening balance
    rejected = system.metrics.tentative_rejected
    values = system.nodes[0].store.snapshot().values()
    # the guard specifically ensured no *accepted mobile debit* overdrew;
    # verify the guard actually fired if anything would have overdrawn
    assert all(v > -OPENING_BALANCE for v in values)
    assert rejected >= 0  # bookkeeping sane


def test_full_invariant_battery(completed_day):
    system, _, _ = completed_day
    report = check_all(system)
    assert report.ok, report.describe()
    assert system.base_divergence() == 0
    assert system.divergence() == 0  # fleet ends connected and drained


def test_deadlocked_base_replays_were_retried_not_lost(completed_day):
    system, _, _ = completed_day
    # restarts may or may not have occurred, but no transaction vanished:
    # commits + aborts + rejections account for every submission the system
    # acknowledged (aborts only from deadlock victims that exhausted retry,
    # which the accounting check would flag via tentative bookkeeping)
    assert system.metrics.aborts == 0 or system.metrics.restarts > 0


def test_determinism_of_the_whole_day():
    """The entire composite scenario replays bit-identically."""

    def run_day():
        system = TwoTierSystem(
            SystemSpec(num_nodes=4, db_size=30, action_time=0.001, seed=7,
                       initial_value=100),
            num_base=2,
        )
        oltp = WorkloadGenerator(
            system,
            uniform_update_profile(actions=2, db_size=30, commutative=True),
            tps=2.0,
            node_ids=[0, 1],
        )
        oltp.start(40.0)
        fleet = MobileCycleDriver(
            system,
            uniform_update_profile(actions=2, db_size=30, commutative=True),
            tps=1.0,
            disconnect_time=5.0,
            acceptance=AlwaysAccept(),
        )
        fleet.start(40.0)
        system.run()
        return system.metrics.as_dict(), system.snapshot()

    assert run_day() == run_day()


def test_conservation_under_commutative_day():
    """With AlwaysAccept and commutative ops, nothing is ever lost: the
    final total equals opening total plus every committed delta."""
    system = TwoTierSystem(
        SystemSpec(num_nodes=4, db_size=20, action_time=0.001, seed=9,
                   initial_value=0, record_history=True),
        num_base=2,
    )
    fleet = MobileCycleDriver(
        system,
        uniform_update_profile(actions=2, db_size=20, commutative=True),
        tps=2.0,
        disconnect_time=5.0,
        acceptance=AlwaysAccept(),
    )
    fleet.start(40.0)
    deltas = []

    # base OLTP with known deltas for exact accounting
    def base_txns():
        for i in range(20):
            yield system.engine.timeout(1.5)
            delta = (i % 5) - 2
            process = system.submit(0, [IncrementOp(i % 20, delta)])
            deltas.append((process, delta))

    system.engine.process(base_txns())
    system.run()

    committed_base = sum(
        delta for process, delta in deltas
        if process.value.state.value == "committed"
    )
    # every accepted tentative increment is also in the stores; their sum
    # is the store total minus the base contribution
    total = conservation_total(system)
    assert system.metrics.tentative_rejected == 0
    mobile_contribution = total - committed_base
    # cross-check against the replayed tentative transactions themselves
    expected_mobile = sum(
        op.delta
        for mobile in system.mobiles.values()
        for record in mobile.accepted_transactions
        for op in record.ops
        if hasattr(op, "delta")
    )
    assert mobile_contribution == expected_mobile
