"""Figure 2 — object master versus object group ownership.

"Updates may be controlled in two ways. Either all updates emanate from a
master copy of the object, or updates may emanate from any. Group ownership
has many more chances for conflicting updates."

Measured: the same concurrent single-object workload run under group
ownership (lazy-group: concurrent versions race and need reconciliation) and
master ownership (lazy-master: writers serialize at the owner; zero
reconciliations, zero lost updates).
"""

from repro.metrics.report import format_table
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.lazy_master import LazyMasterSystem
from repro.txn.ops import IncrementOp

NODES = 4
TRIALS = 25


def run_figure2():
    results = {}
    for name, cls in [("group", LazyGroupSystem), ("master", LazyMasterSystem)]:
        reconciliations = 0
        lost = 0
        for trial in range(TRIALS):
            system = cls(num_nodes=NODES, db_size=3, action_time=0.001,
                         message_delay=0.5, seed=trial)
            # every node updates the same object at the same instant: the
            # maximal conflicting-update opportunity of Figure 2
            for origin in range(NODES):
                system.submit(origin, [IncrementOp(0, 1)])
            system.run()
            assert system.converged()
            reconciliations += system.metrics.reconciliations
            lost += NODES - system.nodes[0].store.value(0)
        results[name] = (reconciliations / TRIALS, lost / TRIALS)
    return results


def test_bench_figure2(benchmark):
    results = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    print()
    print(format_table(
        ["ownership", "reconciliations per round", "lost updates per round"],
        [(k, *v) for k, v in results.items()],
        title=(
            "Figure 2: 4 nodes update one object simultaneously "
            f"(mean of {TRIALS} rounds)"
        ),
    ))
    group_reconciliations, group_lost = results["group"]
    master_reconciliations, master_lost = results["master"]

    # group ownership: many conflicting updates -> reconciliations and loss
    assert group_reconciliations > 0
    assert group_lost > 0
    # master ownership: writers serialize at the owner -> neither
    assert master_reconciliations == 0
    assert master_lost == 0
