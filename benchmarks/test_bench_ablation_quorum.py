"""Ablation — quorum availability (section 3's high-availability variant).

"For high availability, eager replication systems allow updates among
members of the quorum or cluster [Gifford]."

Measured: write availability of majority quorums versus read-one-write-all
across node counts and node reliabilities (the Gifford vote arithmetic), and
the throughput effect of quorum mode when a replica is dark.
"""

import pytest

from repro.metrics.report import format_table
from repro.replication.eager_group import EagerGroupSystem
from repro.replication.quorum import QuorumConfig
from repro.txn.ops import IncrementOp
from repro.replication import SystemSpec


def availability_table():
    rows = []
    for n in [3, 5, 7]:
        majority = QuorumConfig.majority(n)
        rowa = QuorumConfig.read_one_write_all(n)
        for p in [0.9, 0.99]:
            rows.append(
                (n, p, majority.write_availability(p),
                 rowa.write_availability(p), rowa.read_availability(p))
            )
    return rows


def throughput_with_dark_replica(quorum: bool):
    system = EagerGroupSystem(
        SystemSpec(num_nodes=3, db_size=20, action_time=0.001, seed=0),
        quorum=quorum,
    )
    system.network.disconnect(2)
    for i in range(50):
        system.submit(i % 2, [IncrementOp(i % 20, 1)])
    system.run()
    committed = system.metrics.commits
    # let the dark replica catch up and check convergence
    system.network.reconnect(2)
    system.run()
    return committed, system.converged()


def simulate():
    return (availability_table(),
            throughput_with_dark_replica(False),
            throughput_with_dark_replica(True))


def test_bench_quorum(benchmark):
    table, without_quorum, with_quorum = benchmark.pedantic(
        simulate, rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["replicas", "node up-prob", "majority write avail",
         "ROWA write avail", "ROWA read avail"],
        table,
        title="Ablation: Gifford quorum availability",
    ))
    print(format_table(
        ["mode", "commits with 1 of 3 replicas dark", "converged after rejoin"],
        [
            ("no quorum", *without_quorum),
            ("majority quorum", *with_quorum),
        ],
        title="Quorum mode under a dark replica",
    ))

    # majority quorums strictly beat write-all availability
    for n, p, majority, rowa_w, rowa_r in table:
        assert majority > rowa_w
        assert rowa_r > majority  # reading any single replica is easiest

    # a dark replica halts a non-quorum eager system entirely
    assert without_quorum[0] == 0
    # quorum mode commits everything and converges after catch-up
    assert with_quorum[0] == 50
    assert with_quorum[1]
