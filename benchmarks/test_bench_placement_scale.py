"""Directory placement at scale: 10k nodes, 1M objects, lazy stores.

The tentpole claim this bench proves: a :class:`DirectoryPlacement` binds a
10,000-node / 1,000,000-object system in well under a second, and the lazy
stores materialise **only the records transactions actually touch** — the
whole sweep (build, 600 three-object transactions, live migrations, a full
divergence audit) fits in a small, stated memory budget where eager
materialisation of the 3M nominal replicas would not.

The ride-along ablation quantifies *why* the default grouping is
``locality``: a transaction over ``w`` consecutive object ids touches one
shard's replica set (~k distinct nodes) under locality grouping, but
scatters across up to ``w*k`` nodes under hash grouping — fewer nodes per
transaction means fewer propagation targets and fewer chances to conflict.

Results land in ``BENCH_placement.json`` (the ``placement-scale-smoke`` CI
artifact).  Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_placement_scale.py -q
"""

import json
import random
import resource
import time
from pathlib import Path

import pytest

from repro.obs.samplers import Telemetry
from repro.placement import Placement
from repro.replication import LazyGroupSystem, SystemSpec
from repro.txn.ops import WriteOp

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_placement.json"

NODES = 10_000
DB_SIZE = 1_000_000
K = 3
TXNS = 600
TXN_WIDTH = 3  # consecutive oids per transaction (locality-friendly)
MIGRATIONS = 10
SEED = 42

#: peak-RSS ceiling for the whole process (build + sweep + audit).  The
#: measured footprint is ~50 MB; the 3M nominal replicas alone would cost
#: an order of magnitude more if stores materialised eagerly, so this
#: budget fails the job if laziness ever regresses.
RSS_BUDGET_MB = 512

#: hotspot windows scored in the locality-vs-hash ablation
ABLATION_WINDOWS = 200
HOT_PREFIX = 50_000  # Zipf-style hot region: the low object ids


def _span_stats(bound, rng):
    """Mean distinct nodes touched by hotspot transactions under ``bound``."""
    spans = []
    for _ in range(ABLATION_WINDOWS):
        base = rng.randrange(0, HOT_PREFIX - TXN_WIDTH)
        nodes = set()
        for oid in range(base, base + TXN_WIDTH):
            nodes.update(bound.replicas(oid))
        spans.append(len(nodes))
    return sum(spans) / len(spans), max(spans)


@pytest.fixture(scope="module")
def payload():
    """One full measurement, shared by the assertions, persisted for CI."""
    telemetry = Telemetry(interval=1.0)
    build_started = time.perf_counter()
    system = LazyGroupSystem(SystemSpec(
        num_nodes=NODES,
        db_size=DB_SIZE,
        action_time=0.001,
        message_delay=0.001,
        seed=7,
        placement=Placement.from_spec(f"dir:k={K}"),
        telemetry=telemetry,
    ))
    build_elapsed = time.perf_counter() - build_started

    rng = random.Random(SEED)
    touched = set()
    sweep_started = time.perf_counter()
    for _ in range(TXNS):
        base = rng.randrange(0, DB_SIZE - TXN_WIDTH)
        oids = range(base, base + TXN_WIDTH)
        touched.update(oids)
        system.submit(
            system.placement.master(base),
            [WriteOp(oid, rng.randrange(1_000_000)) for oid in oids],
        )
    system.run()

    # live migrations of touched objects: the record transfer rides the
    # normal network path and the directory rewrite is O(1)
    moved = []
    for oid in sorted(touched)[:MIGRATIONS]:
        replicas = system.placement.replicas(oid)
        src = replicas[-1]
        dst = next(
            node for node in range(NODES)
            if not system.placement.is_replica(oid, node)
        )
        system.migrate(oid, src, dst)
        moved.append((oid, src, dst))
    system.run()
    sweep_elapsed = time.perf_counter() - sweep_started

    telemetry.sample(system.engine.now)

    audit_started = time.perf_counter()
    divergence = system.divergence()
    audit_elapsed = time.perf_counter() - audit_started

    materialized_total = sum(system.materialized_counts())
    nominal_total = sum(system.nominal_resident_counts())
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

    ablation_rng = random.Random(SEED + 1)
    locality_mean, locality_max = _span_stats(
        Placement.from_spec(f"dir:k={K}").bind(NODES, DB_SIZE), ablation_rng
    )
    hash_mean, hash_max = _span_stats(
        Placement.from_spec(f"dir:k={K},group=hash").bind(NODES, DB_SIZE),
        ablation_rng,
    )

    data = {
        "schema": 1,
        "scale": {
            "nodes": NODES,
            "db_size": DB_SIZE,
            "replication_factor": K,
            "transactions": TXNS,
            "txn_width": TXN_WIDTH,
            "migrations": len(moved),
        },
        "results": {
            "commits": system.metrics.commits,
            "divergence": divergence,
            "touched_objects": len(touched),
            "materialized_total": materialized_total,
            "nominal_total": nominal_total,
            "resident_objects_gauge": telemetry.series[
                "resident_objects"
            ].values[-1],
        },
        "memory": {
            "peak_rss_mb": round(peak_rss_mb, 1),
            "budget_mb": RSS_BUDGET_MB,
        },
        "timing_seconds": {
            "build": round(build_elapsed, 3),
            "sweep": round(sweep_elapsed, 3),
            "divergence_audit": round(audit_elapsed, 3),
        },
        "ablation": {
            "windows": ABLATION_WINDOWS,
            "hot_prefix": HOT_PREFIX,
            "locality_span_mean": locality_mean,
            "locality_span_max": locality_max,
            "hash_span_mean": hash_mean,
            "hash_span_max": hash_max,
        },
    }
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data, system


def test_every_transaction_commits_and_replicas_converge(payload):
    data, system = payload
    assert data["results"]["commits"] == TXNS
    assert data["results"]["divergence"] == 0
    assert system.metrics.as_dict()["migrations"] == MIGRATIONS
    assert system.placement.moved == MIGRATIONS


def test_lazy_stores_materialise_only_touched_records(payload):
    data, _ = payload
    results = data["results"]
    # every materialised record is one of the k replicas of a touched
    # object (migrations move copies, they never add them)
    assert results["materialized_total"] <= K * results["touched_objects"]
    # and the footprint is a rounding error against the nominal 3M copies
    assert results["materialized_total"] < results["nominal_total"] / 100
    # the resident_objects telemetry gauge reports the same count
    assert results["resident_objects_gauge"] == results["materialized_total"]


def test_peak_rss_stays_inside_the_stated_budget(payload):
    data, _ = payload
    assert data["memory"]["peak_rss_mb"] < RSS_BUDGET_MB, (
        f"peak RSS {data['memory']['peak_rss_mb']:.0f} MB exceeds the "
        f"{RSS_BUDGET_MB} MB budget — lazy stores may have regressed"
    )


def test_directory_binds_large_systems_fast(payload):
    data, _ = payload
    # O(S*k) map construction: binding 10k x 1M must not enumerate the
    # object space
    assert data["timing_seconds"]["build"] < 5.0


def test_locality_grouping_narrows_hotspot_transactions(payload):
    data, _ = payload
    ablation = data["ablation"]
    # locality: a w-wide window usually sits inside one shard -> ~k nodes
    assert ablation["locality_span_mean"] < K + 1
    # hash scatters the same window across ~w distinct replica sets
    assert ablation["hash_span_mean"] > ablation["locality_span_mean"] * 1.5
    assert ablation["hash_span_max"] <= TXN_WIDTH * K


def test_payload_written_with_ci_schema(payload):
    data, _ = payload
    stored = json.loads(BENCH_PATH.read_text())
    assert stored == data
    for key in ("schema", "scale", "results", "memory", "ablation"):
        assert key in stored, f"CI artifact schema missing {key!r}"
