"""X2 — the lost-update problem (section 6).

"If convergence were the only goal, the timestamp method would be
sufficient. But the timestamp scheme may lose the effects of some
transactions ... Timestamp schemes are vulnerable to lost updates."

Measured on the convergent (Lotus Notes / Access style) substrate: K
replicas each apply a known number of updates to the same objects while
partitioned, then gossip to convergence.

* timestamped replace — converges, loses (K-1)/K of the updates;
* commutative increment (the paper's proposed third form) — converges,
  loses nothing;
* timestamped append — converges, keeps every note.
"""

import pytest

from repro.metrics.report import format_table
from repro.replication.convergent import (
    ConvergentReplica,
    diverged_objects,
    fully_sync,
)

REPLICAS = 4
OBJECTS = 10
UPDATES_PER_REPLICA = 5


def run_lost_updates():
    # --- timestamped replace ------------------------------------------- #
    replace_replicas = [ConvergentReplica(i, OBJECTS) for i in range(REPLICAS)]
    for replica in replace_replicas:
        for oid in range(OBJECTS):
            for step in range(UPDATES_PER_REPLICA):
                replica.replace(oid, replica.node_id * 1000 + step)
    fully_sync(replace_replicas)
    replace_diverged = diverged_objects(replace_replicas)
    lost = sum(r.lost_updates for r in replace_replicas)

    # --- commutative increments ----------------------------------------- #
    increment_replicas = [ConvergentReplica(i, OBJECTS)
                          for i in range(REPLICAS)]
    for replica in increment_replicas:
        for oid in range(OBJECTS):
            for _ in range(UPDATES_PER_REPLICA):
                replica.increment(oid, 1)
    fully_sync(increment_replicas)
    increment_diverged = diverged_objects(increment_replicas)
    expected_total = REPLICAS * UPDATES_PER_REPLICA
    increments_kept = all(
        r.value(oid) == expected_total
        for r in increment_replicas
        for oid in range(OBJECTS)
    )

    # --- timestamped append ---------------------------------------------- #
    append_replicas = [ConvergentReplica(i, OBJECTS) for i in range(REPLICAS)]
    for replica in append_replicas:
        for oid in range(OBJECTS):
            for step in range(UPDATES_PER_REPLICA):
                replica.append(oid, f"note-{replica.node_id}-{step}")
    fully_sync(append_replicas)
    append_diverged = diverged_objects(append_replicas)
    notes_kept = all(
        len(r.notes(oid)) == REPLICAS * UPDATES_PER_REPLICA
        for r in append_replicas
        for oid in range(OBJECTS)
    )

    return (replace_diverged, lost, increment_diverged, increments_kept,
            append_diverged, notes_kept)


def test_bench_lost_updates(benchmark):
    (replace_diverged, lost, increment_diverged, increments_kept,
     append_diverged, notes_kept) = benchmark.pedantic(
        run_lost_updates, rounds=1, iterations=1
    )

    print()
    print(format_table(
        ["update form", "converged?", "updates lost"],
        [
            ("timestamped replace", replace_diverged == 0, lost),
            ("commutative increment", increment_diverged == 0,
             0 if increments_kept else "some"),
            ("timestamped append", append_diverged == 0,
             0 if notes_kept else "some"),
        ],
        title=(
            f"X2: {REPLICAS} replicas x {UPDATES_PER_REPLICA} updates on "
            f"{OBJECTS} objects, partitioned then gossiped"
        ),
    ))

    # all three forms converge — that is the whole point of the schemes
    assert replace_diverged == 0
    assert increment_diverged == 0
    assert append_diverged == 0

    # but replace lost updates (at least one conflicting version per object
    # was overwritten), while the commutative forms kept everything
    assert lost >= OBJECTS
    assert increments_kept
    assert notes_kept
