"""Figures 5 & 6 — the two-tier replication flow, end to end.

Figure 5: mobile nodes accumulate tentative transactions while dark; on
reconnect they flow to base nodes, which send back "base updates & failed
base transactions".  Figure 6: tentative transactions from the mobile node
merge with transactions from others at the base; updates and rejects flow
back.

The benchmark runs a complete disconnect / tentative-work / reconnect /
re-execute cycle with interference from other nodes, and measures every
leg of the exchange.
"""

import pytest

from repro.core import NonNegativeOutputs, TwoTierSystem
from repro.metrics.report import format_table
from repro.txn.ops import IncrementOp
from repro.replication import SystemSpec

BALANCE = 100


def run_flow():
    system = TwoTierSystem(
        SystemSpec(num_nodes=4, db_size=10, action_time=0.001,
                   initial_value=BALANCE, seed=0),
        num_base=2,
    )
    m2, m3 = system.mobile(2), system.mobile(3)

    # both mobiles go dark and work tentatively against object 0
    system.disconnect_mobile(2)
    system.disconnect_mobile(3)
    for _ in range(3):
        m2.submit_tentative([IncrementOp(0, -20)], NonNegativeOutputs())
        m3.submit_tentative([IncrementOp(0, -20)], NonNegativeOutputs())
    system.run()

    tentative_views = (m2.read(0), m3.read(0))
    master_before = system.nodes[0].store.value(0)

    # "transactions from others" (Figure 6): a base client drains funds
    system.submit(0, [IncrementOp(0, -30)])
    system.run()

    # reconnect one at a time; base transactions interleave serializably
    system.reconnect_mobile(2)
    system.run()
    system.reconnect_mobile(3)
    system.run()

    return system, tentative_views, master_before


def test_bench_figure56(benchmark):
    system, tentative_views, master_before = benchmark.pedantic(
        run_flow, rounds=1, iterations=1
    )
    m2, m3 = system.mobile(2), system.mobile(3)
    final = system.nodes[0].store.value(0)
    accepted = system.metrics.tentative_accepted
    rejected = system.metrics.tentative_rejected

    print()
    print(format_table(
        ["leg of the exchange", "value"],
        [
            ("tentative view at mobile 2 while dark", tentative_views[0]),
            ("tentative view at mobile 3 while dark", tentative_views[1]),
            ("master value while mobiles dark", master_before),
            ("tentative txns committed", system.metrics.tentative_committed),
            ("base re-executions accepted", accepted),
            ("base re-executions rejected", rejected),
            ("final master balance", final),
            ("base divergence (system delusion)", system.base_divergence()),
            ("accept/reject notices delivered",
             len(m2.notices) + len(m3.notices)),
        ],
        title="Figures 5/6: the two-tier exchange, measured",
    ))

    # while dark: each mobile saw its own 3 tentative debits (100 - 60)
    assert tentative_views == (40, 40)
    # the master was untouched by tentative work
    assert master_before == BALANCE

    # after the exchange: 100 - 30 (base client) leaves room for exactly 3
    # of the 6 replayed -20 debits before the balance would go negative
    assert accepted == 3
    assert rejected == 3
    assert final == BALANCE - 30 - 3 * 20  # = 10

    # rejects carried diagnostics back to their mobiles (Figure 5's
    # "failed base transactions" arrow)
    assert all("negative" in t.diagnostic
               for t in m2.rejected_transactions + m3.rejected_transactions)
    assert len(m2.notices) + len(m3.notices) == 6

    # the base tier never diverged, and the mobiles re-converged to it
    assert system.base_divergence() == 0
    assert system.divergence() == 0
    assert m2.read(0) == final
