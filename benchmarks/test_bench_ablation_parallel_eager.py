"""Ablation — footnote 2: sequential versus parallel eager replica updates.

"An alternate model has eager actions broadcast the update to all replicas
in one instant. ... This model avoids the polynomial explosion of waits and
deadlocks if the total TPS rate is held constant."

Measured: the same eager workload with sequential (the paper's main model)
versus parallel replica application.  Sequential deadlocks grow ~cubically;
parallel deadlocks follow the quadratic lazy-master law, and transaction
durations stay flat in N.
"""

import pytest

from benchmarks.conftest import EAGER_REGIME, NODE_SWEEP
from repro.analytic import eager
from repro.analytic.scaling import fit_exponent, sweep
from repro.metrics.report import format_table
from repro.replication.eager_group import EagerGroupSystem
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import uniform_update_profile
from repro.replication import SystemSpec

DURATION = 200.0


def run_mode(parallel: bool):
    rates = []
    for nodes in NODE_SWEEP:
        system = EagerGroupSystem(
            SystemSpec(num_nodes=nodes, db_size=EAGER_REGIME.db_size,
                       action_time=EAGER_REGIME.action_time, seed=1),
            parallel_updates=parallel,
        )
        workload = WorkloadGenerator(
            system,
            uniform_update_profile(actions=EAGER_REGIME.actions,
                                   db_size=EAGER_REGIME.db_size),
            tps=EAGER_REGIME.tps,
        )
        workload.start(DURATION)
        system.run()
        assert system.converged()
        rates.append(system.metrics.deadlocks / DURATION)
    return rates


def simulate():
    return run_mode(False), run_mode(True)


def test_bench_parallel_eager(benchmark):
    sequential, parallel = benchmark.pedantic(simulate, rounds=1,
                                              iterations=1)

    # analytic: the footnote's model is exactly quadratic
    r = sweep(eager.parallel_update_deadlock_rate,
              EAGER_REGIME, "nodes", [1, 2, 4, 8])
    assert fit_exponent(r.xs, r.ys) == pytest.approx(2.0)

    print()
    print(format_table(
        ["nodes", "sequential deadlocks/s", "parallel deadlocks/s"],
        list(zip(NODE_SWEEP, sequential, parallel)),
        title="Footnote 2 ablation: sequential vs parallel replica updates",
    ))
    seq_growth = sequential[-1] / sequential[0]
    par_growth = parallel[-1] / max(parallel[0], 1e-9)
    print(f"growth {NODE_SWEEP[0]}->{NODE_SWEEP[-1]} nodes: "
          f"sequential {seq_growth:.0f}x, parallel {par_growth:.0f}x")

    # at every scale, parallel application deadlocks strictly less
    for n, s, p in zip(NODE_SWEEP, sequential, parallel):
        assert p <= s, f"parallel should not exceed sequential at N={n}"
    # and the explosion is tamed: growth at least 2x flatter
    assert par_growth < seq_growth / 2
