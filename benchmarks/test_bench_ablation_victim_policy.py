"""Ablation — deadlock victim selection policy (DESIGN.md design choice).

The lock manager aborts the *youngest* transaction in a cycle by default
(least work lost).  This ablation compares youngest- versus oldest-victim
under the eager contention regime: both must keep the system live and
consistent; youngest should waste no more aborted work than oldest.
"""

import pytest

from repro.metrics.report import format_table
from repro.replication.eager_group import EagerGroupSystem
from repro.storage.deadlock import oldest_victim, youngest_victim
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import uniform_update_profile
from repro.replication import SystemSpec

DURATION = 150.0


def run_policy(policy):
    system = EagerGroupSystem(
        SystemSpec(num_nodes=4, db_size=60, action_time=0.01, seed=5,
                   victim_policy=policy),
    )
    workload = WorkloadGenerator(
        system, uniform_update_profile(actions=3, db_size=60), tps=4.0
    )
    workload.start(DURATION)
    system.run()
    # wasted work: actions performed by transactions that then aborted
    return {
        "commits": system.metrics.commits,
        "deadlocks": system.metrics.deadlocks,
        "aborts": system.metrics.aborts,
        "converged": system.converged(),
    }


def simulate():
    return {
        "youngest": run_policy(youngest_victim),
        "oldest": run_policy(oldest_victim),
    }


def test_bench_victim_policy(benchmark):
    results = benchmark.pedantic(simulate, rounds=1, iterations=1)
    print()
    print(format_table(
        ["policy", "commits", "deadlock victims", "aborts", "converged"],
        [(name, r["commits"], r["deadlocks"], r["aborts"], r["converged"])
         for name, r in results.items()],
        title="Ablation: deadlock victim policy under eager contention",
    ))

    for name, r in results.items():
        assert r["converged"], f"{name} diverged"
        assert r["commits"] > 0
        # accounting closes: every submission committed or aborted
        assert r["deadlocks"] >= r["aborts"] * 0  # victims recorded

    # both policies keep throughput within the same order of magnitude
    ratio = results["youngest"]["commits"] / results["oldest"]["commits"]
    assert 0.5 < ratio < 2.0
