"""Extension — dilation-corrected equation 12 versus the simulator.

The paper's model "ignores time-dilation" and predicts exactly cubic eager
deadlock growth; our closed-system simulator consistently measures a little
*above* cubic.  This benchmark closes the loop: the M/M/1-dilated equation
12 (see :mod:`repro.analytic.dilation`) predicts the measured super-cubic
exponent, confirming the deviation is the second-order effect the paper
called out — not a simulator artefact.
"""

import pytest

from benchmarks.conftest import EAGER_REGIME, NODE_SWEEP, measure_sweep
from repro.analytic import eager
from repro.analytic.dilation import (
    dilated_eager_deadlock_rate,
    effective_exponent,
    node_utilization,
)
from repro.analytic.scaling import fit_exponent
from repro.metrics.report import format_table

DURATION = 200.0
SEEDS = 2


def simulate():
    totals = [0.0] * len(NODE_SWEEP)
    for seed in range(SEEDS):
        rates = measure_sweep(
            "eager-group", EAGER_REGIME, NODE_SWEEP,
            metric=lambda r: r.rates.deadlock_rate, duration=DURATION,
            seed=seed,
        )
        totals = [t + r for t, r in zip(totals, rates)]
    return [t / SEEDS for t in totals]


def test_bench_dilation(benchmark):
    measured = benchmark.pedantic(simulate, rounds=1, iterations=1)

    rows = []
    for nodes, sim_rate in zip(NODE_SWEEP, measured):
        q = EAGER_REGIME.with_(nodes=nodes)
        rows.append((
            nodes,
            node_utilization(q),
            eager.total_deadlock_rate(q),
            dilated_eager_deadlock_rate(q),
            sim_rate,
        ))
    print()
    print(format_table(
        ["nodes", "utilization rho", "eq 12 (paper)", "eq 12 dilated",
         "simulated"],
        rows,
        title="Dilation-corrected equation 12 versus measurement",
    ))

    paper_exp = effective_exponent(
        eager.total_deadlock_rate, EAGER_REGIME, NODE_SWEEP[0], NODE_SWEEP[-1]
    )
    dilated_exp = effective_exponent(
        dilated_eager_deadlock_rate, EAGER_REGIME,
        NODE_SWEEP[0], NODE_SWEEP[-1],
    )
    sim_exp = fit_exponent(NODE_SWEEP, measured)
    print(f"exponents: paper {paper_exp:.2f}, dilated {dilated_exp:.2f}, "
          f"simulated {sim_exp:.2f}")

    # the paper curve is exactly cubic; the dilated curve is super-cubic
    assert paper_exp == pytest.approx(3.0)
    assert dilated_exp > 3.2
    # the measurement is super-cubic too, and the dilated model explains it
    # better than the raw cubic does
    assert sim_exp > 3.0
    assert abs(sim_exp - dilated_exp) < abs(sim_exp - paper_exp) + 0.3
    # at every point the dilated prediction sits above the paper's
    for _, rho, paper_rate, dilated_rate, _ in rows:
        assert dilated_rate > paper_rate
        assert rho < 1.0
