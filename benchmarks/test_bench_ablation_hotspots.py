"""Ablation — hotspots (the model's no-hotspot assumption, stress-tested).

Table 2's workload draws objects "equi-probable (there are no hotspots)".
Real workloads skew; this ablation quantifies how quickly skew degrades the
closed forms: a hot set receiving weighted traffic concentrates conflicts,
raising wait/deadlock rates well above the uniform-access prediction —
i.e. the paper's instability thresholds are *optimistic* for skewed loads.
"""

import pytest

from repro.metrics.report import format_table
from repro.replication.eager_group import EagerGroupSystem
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import TransactionProfile, write_op_factory
from repro.replication import SystemSpec

DB = 200
DURATION = 150.0
SKEWS = [(0.0, 1.0), (0.05, 10.0), (0.05, 50.0)]  # (hot_fraction, hot_weight)


def simulate():
    rows = []
    for hot_fraction, hot_weight in SKEWS:
        system = EagerGroupSystem(
            SystemSpec(num_nodes=3, db_size=DB, action_time=0.01, seed=2),
        )
        profile = TransactionProfile(
            actions=3, db_size=DB, op_factory=write_op_factory,
            hot_fraction=hot_fraction, hot_weight=hot_weight,
        )
        workload = WorkloadGenerator(system, profile, tps=4.0)
        workload.start(DURATION)
        system.run()
        assert system.converged()
        rows.append((
            f"{hot_fraction:.0%} hot x{hot_weight:.0f}",
            system.metrics.waits / DURATION,
            system.metrics.deadlocks / DURATION,
        ))
    return rows


def test_bench_hotspots(benchmark):
    rows = benchmark.pedantic(simulate, rounds=1, iterations=1)
    print()
    print(format_table(
        ["access skew", "waits/s", "deadlocks/s"],
        rows,
        title="Hotspot ablation: the no-hotspot assumption is optimistic",
    ))
    waits = [w for _, w, _ in rows]
    deadlocks = [d for _, _, d in rows]
    # skew strictly increases contention
    assert waits[1] > waits[0]
    assert waits[2] > waits[1]
    assert deadlocks[2] > deadlocks[0]
