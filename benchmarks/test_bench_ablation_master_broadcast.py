"""Ablation — the paper's two lazy-master propagation designs (§5).

"we assume the node originating the transaction broadcasts the replica
updates to all the slave replicas after the master transaction commits...
Alternatively, each master node sends replica updates to slaves in
sequential commit order."

The designs are compared under message delay.  Both rely on the same
timestamp test to suppress updates that concurrent slave-side application
re-orders ("If the record timestamp is newer than a replica update
timestamp, the update is 'stale' and can be ignored"), and both converge
identically; the trade is message traffic — cross-master transactions split
into one message per master in the streams design — versus per-stream
commit-order delivery.
"""

import pytest

from repro.metrics.report import format_table
from repro.replication.lazy_master import LazyMasterSystem
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import uniform_update_profile
from repro.replication import SystemSpec

DURATION = 120.0


def run_variant(master_broadcasts: bool):
    system = LazyMasterSystem(
        SystemSpec(num_nodes=4, db_size=40, action_time=0.002,
                   message_delay=0.3, seed=6),
        master_broadcasts=master_broadcasts,
    )
    workload = WorkloadGenerator(
        system, uniform_update_profile(actions=3, db_size=40), tps=3.0
    )
    workload.start(DURATION)
    system.run()
    assert system.converged()
    return {
        "commits": system.metrics.commits,
        "messages": system.network.messages_sent,
        "stale": system.metrics.stale_updates,
        "replica_txns": system.metrics.replica_updates,
    }


def simulate():
    return {
        "originator broadcast": run_variant(False),
        "per-master streams": run_variant(True),
    }


def test_bench_master_broadcast(benchmark):
    results = benchmark.pedantic(simulate, rounds=1, iterations=1)
    print()
    print(format_table(
        ["propagation design", "commits", "messages", "stale suppressed",
         "replica txns"],
        [(name, r["commits"], r["messages"], r["stale"], r["replica_txns"])
         for name, r in results.items()],
        title="Lazy-master propagation designs under 0.3s message delay",
    ))

    broadcast = results["originator broadcast"]
    streams = results["per-master streams"]
    # identical workloads commit identical work, both converge (asserted
    # inside the runs)
    assert broadcast["commits"] == streams["commits"]
    # cross-master transactions split into more, smaller messages
    assert streams["messages"] >= broadcast["messages"]
    # the timestamp test absorbs re-ordering in both designs: suppression
    # counts stay a tiny fraction of the replica traffic
    for r in results.values():
        assert r["stale"] < 0.05 * r["replica_txns"]
