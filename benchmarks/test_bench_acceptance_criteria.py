"""Extension — the acceptance-criteria spectrum (section 7).

"If the acceptance criteria requires the base and tentative transaction
have identical outputs, then subsequent transactions reading tentative
results written by T will fail too.  On the other hand, weaker acceptance
criteria are possible."

The same disconnected increment workload replayed under criteria of
decreasing strictness: the rejection rate falls monotonically from the
"probably too pessimistic" identical-outputs test down to always-accept
(the fully-commutative design point) — while the master tier never diverges
under any of them.
"""

import pytest

from repro.analytic import ModelParameters
from repro.core.acceptance import (
    AlwaysAccept,
    IdenticalOutputs,
    NonNegativeOutputs,
    WithinTolerance,
)
from repro.harness import ExperimentConfig, run_experiment
from repro.metrics.report import format_table

PARAMS = ModelParameters(db_size=30, nodes=3, tps=2, actions=2,
                         action_time=0.001, disconnect_time=4.0)
DURATION = 60.0

CRITERIA = [
    ("identical-outputs (strictest)", IdenticalOutputs()),
    ("within 5% tolerance", WithinTolerance(0.05)),
    ("within 50% tolerance", WithinTolerance(0.50)),
    ("non-negative only", NonNegativeOutputs()),
    ("always-accept (commutative design)", AlwaysAccept()),
]


def simulate():
    rows = []
    for name, criterion in CRITERIA:
        result = run_experiment(
            ExperimentConfig(strategy="two-tier", params=PARAMS,
                             duration=DURATION, seed=3,
                             acceptance=criterion)
        )
        total = (result.metrics.tentative_accepted
                 + result.metrics.tentative_rejected)
        rows.append((
            name,
            result.metrics.tentative_rejected,
            total,
            result.extra["base_divergence"],
        ))
    return rows


def test_bench_acceptance_criteria(benchmark):
    rows = benchmark.pedantic(simulate, rounds=1, iterations=1)
    print()
    print(format_table(
        ["acceptance criterion", "rejected", "replayed", "base diverged"],
        rows,
        title="Acceptance-criteria spectrum on identical mobile workloads",
    ))

    rejects = [row[1] for row in rows]
    # identical workloads: same number of replays everywhere
    assert len({row[2] for row in rows}) == 1
    # strictness ordering: each weaker criterion rejects no more
    for stricter, weaker in zip(rejects, rejects[1:]):
        assert weaker <= stricter
    # the endpoints of the spectrum
    assert rejects[0] > 0  # identical-outputs rejects under interference
    assert rejects[-1] == 0  # always-accept never does
    # the master database is immune to the choice
    assert all(row[3] == 0 for row in rows)
