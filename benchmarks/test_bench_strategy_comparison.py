"""X3 — the section-8 summary, quantified: every strategy at identical load.

"Replicating data at many nodes and letting anyone update the data is
problematic... lazy-group replication just converts waits and deadlocks into
reconciliations. Lazy-master replication has slightly better behavior than
eager-master replication... The solution appears to be ... a two-tier
replication scheme."

One table, every registered strategy, same Table-2 parameters: who waits,
who deadlocks, who reconciles, who rejects, who cert-aborts, who diverges.
The strategy list derives from ``STRATEGY_CLASSES``, so the two
certification strategies (deferred-update, scar) ride the same grid as
the paper's five.

The runs go through the campaign runner's worker pool (each strategy is
one grid cell); every run is a deterministic function of its
configuration, so the parallel results match a serial execution exactly.
"""

import pytest

from repro.analytic import ModelParameters
from repro.harness.comparison import strategy_comparison, strategy_table

PARAMS = ModelParameters(db_size=60, nodes=4, tps=3, actions=3,
                         action_time=0.005)
DURATION = 120.0


def simulate():
    return strategy_comparison(PARAMS, duration=DURATION, seed=2, jobs=2)


def test_bench_strategy_comparison(benchmark):
    results = benchmark.pedantic(simulate, rounds=1, iterations=1)
    print()
    print(strategy_table(results))

    from repro.harness.experiment import STRATEGIES

    assert set(results) == set(STRATEGIES)

    eager_group = results["eager-group"]
    eager_master = results["eager-master"]
    lazy_group = results["lazy-group"]
    lazy_master = results["lazy-master"]
    two_tier = results["two-tier"]
    deferred = results["deferred-update"]
    scar = results["scar"]

    # serializable strategies never reconcile
    for r in (eager_group, eager_master, lazy_master):
        assert r.metrics.reconciliations == 0

    # lazy-group converts conflicts into reconciliations instead
    assert lazy_group.metrics.reconciliations > 0
    assert lazy_group.metrics.reconciliations > (
        lazy_group.metrics.deadlocks
    )

    # lazy master beats the eager schemes on deadlocks (shorter transactions)
    assert lazy_master.metrics.deadlocks <= eager_group.metrics.deadlocks

    # two-tier: no reconciliations, no divergence, and the base tier is a
    # lazy-master system, so deadlock counts stay in the lazy-master regime
    assert two_tier.metrics.reconciliations == 0
    assert two_tier.extra["base_divergence"] == 0
    assert two_tier.divergence == 0

    # the certification strategies convert conflicts into cert aborts:
    # deferred-update executes lock-free (single-lock replica installs
    # cannot cycle, so zero deadlocks); scar only locks at masters during
    # its short validation window, keeping it in the lazy-master regime
    assert deferred.metrics.deadlocks == 0
    assert deferred.metrics.as_dict().get("cert_aborts", 0) > 0
    assert scar.metrics.deadlocks <= eager_group.metrics.deadlocks
    assert scar.metrics.as_dict().get("cert_aborts", 0) > 0
    for r in (deferred, scar):
        assert r.metrics.reconciliations == 0

    # everybody converged after drain (the strategies are all convergent
    # under their own rules at this load)
    for name, r in results.items():
        assert r.divergence == 0, f"{name} diverged"

    # throughput sanity: every strategy committed real work
    for name, r in results.items():
        assert r.metrics.commits > 100, f"{name} committed too little"
