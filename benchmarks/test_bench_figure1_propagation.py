"""Figure 1 — eager versus lazy update propagation.

"When replicated, a simple single-node transaction may apply its updates
remotely either as part of the same transaction (eager) or as separate
transactions (lazy). In either case, if data is replicated at N nodes, the
transaction does N times as much work."

Measured here at N=3 with a 3-action transaction (Write A, Write B, Write C,
Commit — the figure's script):

* single node: 1 transaction, 3 actions;
* eager: 1 transaction, 9 actions, 3x the duration;
* lazy: 3 transactions (root + 2 replica updates), 9 actions total.
"""

from repro.metrics.report import format_table
from repro.replication.eager_group import EagerGroupSystem
from repro.replication.lazy_group import LazyGroupSystem
from repro.txn.ops import WriteOp
from repro.replication import SystemSpec

ACTION_TIME = 0.01
OPS = [WriteOp(0, 1), WriteOp(1, 2), WriteOp(2, 3)]  # Write A, B, C


def run_figure1():
    rows = []

    single = EagerGroupSystem(
        SystemSpec(num_nodes=1, db_size=10, action_time=ACTION_TIME),
    )
    p = single.submit(0, list(OPS))
    single.run()
    rows.append(("single-node", 1, single.metrics.actions, p.value.duration))

    eager = EagerGroupSystem(
        SystemSpec(num_nodes=3, db_size=10, action_time=ACTION_TIME),
    )
    p = eager.submit(0, list(OPS))
    eager.run()
    rows.append(("eager (N=3)", 1, eager.metrics.actions, p.value.duration))

    lazy = LazyGroupSystem(
        SystemSpec(num_nodes=3, db_size=10, action_time=ACTION_TIME),
    )
    p = lazy.submit(0, list(OPS))
    lazy.run()
    lazy_txns = lazy.metrics.commits + lazy.metrics.replica_updates
    rows.append(
        (f"lazy (N=3, {lazy_txns} txns)", lazy_txns, lazy.metrics.actions,
         p.value.duration)
    )
    return rows


def test_bench_figure1(benchmark):
    rows = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    print()
    print(format_table(
        ["configuration", "transactions", "total actions", "root duration (s)"],
        rows,
        title="Figure 1: one 3-action update propagated three ways",
    ))
    single, eager, lazy = rows

    # the transaction does N times as much work when replicated
    assert eager[2] == 3 * single[2]
    assert lazy[2] == 3 * single[2]

    # eager: ONE transaction, stretched N times longer (equation 6)
    assert eager[1] == 1
    assert eager[3] == 3 * single[3]

    # lazy: N transactions, root stays short
    assert lazy[1] == 3
    assert lazy[3] == single[3]
