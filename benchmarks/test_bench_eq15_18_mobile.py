"""Equations 15-18 — disconnected (mobile) lazy-group reconciliation.

"If any two transactions at any two different nodes update the same data
during the disconnection period, then they will need reconciliation" — the
collision probability is quadratic in ``Disconnect_Time x TPS x Actions``
and the system-wide rate quadratic in Nodes (equation 18).

The simulation cycles every node through dark periods
(:class:`DisconnectScheduler` inside the harness).  Note on counting: the
paper's rate counts *node-cycles needing reconciliation*; the simulator
counts every conflicting replica update, which includes the (N-1)-way
propagation fan-out of each collision — one extra factor of N.  The
benchmark therefore fits the **per-node** reconciliation rate against the
model's quadratic law.
"""

import pytest

from repro.analytic import ModelParameters, lazy_group
from repro.analytic.scaling import amplification, fit_exponent, sweep
from repro.harness import ExperimentConfig, run_experiment
from repro.metrics.report import format_table

ANALYTIC = ModelParameters(db_size=10_000, nodes=4, tps=1, actions=5,
                           action_time=0.01, disconnect_time=8.0)
REGIME = ModelParameters(db_size=400, nodes=1, tps=2, actions=2,
                         action_time=0.001, disconnect_time=5.0)
NODES = [2, 4, 8]
SEEDS = 2
DURATION = 80.0


def simulate():
    node_sweep = []
    for nodes in NODES:
        total = 0
        for seed in range(SEEDS):
            result = run_experiment(
                ExperimentConfig(strategy="lazy-group",
                                 params=REGIME.with_(nodes=nodes),
                                 duration=DURATION, seed=seed)
            )
            total += result.metrics.reconciliations
        node_sweep.append(total / (SEEDS * DURATION))

    disconnect_sweep = []
    for disconnect in [2.5, 5.0, 10.0]:
        total = 0
        for seed in range(SEEDS):
            result = run_experiment(
                ExperimentConfig(
                    strategy="lazy-group",
                    params=REGIME.with_(nodes=4, disconnect_time=disconnect),
                    duration=DURATION, seed=seed)
            )
            total += result.metrics.reconciliations
        disconnect_sweep.append(total / (SEEDS * DURATION))
    return node_sweep, disconnect_sweep


def test_bench_eq15_18(benchmark):
    node_rates, disconnect_rates = benchmark.pedantic(simulate, rounds=1,
                                                      iterations=1)

    # --- closed forms ----------------------------------------------------- #
    assert lazy_group.outbound_updates(ANALYTIC) == pytest.approx(40.0)
    assert lazy_group.inbound_updates(ANALYTIC) == pytest.approx(120.0)
    assert lazy_group.collision_probability(ANALYTIC) == pytest.approx(0.64)
    assert lazy_group.mobile_reconciliation_rate(ANALYTIC) == pytest.approx(
        0.32
    )
    r = sweep(lazy_group.mobile_reconciliation_rate, ANALYTIC, "nodes",
              [2, 4, 8, 16])
    assert fit_exponent(r.xs, r.ys) == pytest.approx(2.0, abs=0.1)
    assert amplification(
        lazy_group.mobile_reconciliation_rate, ANALYTIC, "tps", 3
    ) == pytest.approx(9.0)

    # --- simulation -------------------------------------------------------- #
    per_node = [rate / nodes for rate, nodes in zip(node_rates, NODES)]
    print()
    print(format_table(
        ["nodes", "reconciliations/s (all)", "per node"],
        [(n, r, pn) for n, r, pn in zip(NODES, node_rates, per_node)],
        title="Equation 18: mobile reconciliation versus node count",
    ))
    print(format_table(
        ["disconnect time (s)", "reconciliations/s"],
        list(zip([2.5, 5.0, 10.0], disconnect_rates)),
        title="Equation 18: mobile reconciliation versus disconnect time",
    ))

    per_node_exp = fit_exponent(NODES, per_node)
    print(f"per-node exponent in Nodes: {per_node_exp:.2f} (model: 2.0)")
    assert per_node_exp == pytest.approx(2.0, abs=0.6)

    disconnect_exp = fit_exponent([2.5, 5.0, 10.0], disconnect_rates)
    print(f"exponent in Disconnect_Time: {disconnect_exp:.2f} (model: 1.0)")
    assert disconnect_exp == pytest.approx(1.0, abs=0.75)

    # the qualitative claim: scaling up makes a well-behaved prototype blow up
    assert node_rates[-1] > 10 * node_rates[0]
