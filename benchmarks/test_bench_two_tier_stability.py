"""X1 — two-tier stability versus lazy-group instability (section 7 claims).

The same disconnected mobile workload, scaled up in node count, run under:

* lazy-group — reconciliations grow super-linearly (equations 15-18);
* two-tier with commuting transactions — **zero** reconciliations at every
  scale, and the master database never diverges;
* two-tier with the strict identical-outputs acceptance test — rejections
  grow like the collision rate (the paper: acceptance failure "is
  equivalent to the reconciliation mechanism"), but the master database
  *still* never diverges: tentative work may bounce, the base state stays
  consistent.  That asymmetry is the paper's whole point.
"""

import pytest

from repro.analytic import ModelParameters
from repro.harness import ExperimentConfig, run_experiment
from repro.metrics.report import format_table

REGIME = ModelParameters(db_size=100, nodes=1, tps=2, actions=2,
                         action_time=0.001, disconnect_time=4.0)
NODES = [2, 4, 8]
DURATION = 60.0


def simulate():
    rows = []
    for nodes in NODES:
        params = REGIME.with_(nodes=nodes)
        lazy = run_experiment(
            ExperimentConfig(strategy="lazy-group", params=params,
                             duration=DURATION, seed=1)
        )
        commuting = run_experiment(
            ExperimentConfig(strategy="two-tier", params=params,
                             duration=DURATION, seed=1, commutative=True)
        )
        strict = run_experiment(
            ExperimentConfig(strategy="two-tier", params=params,
                             duration=DURATION, seed=1, commutative=False)
        )
        rows.append((nodes, lazy, commuting, strict))
    return rows


def test_bench_two_tier_stability(benchmark):
    rows = benchmark.pedantic(simulate, rounds=1, iterations=1)

    print()
    print(format_table(
        ["nodes", "lazy-group reconcile/s", "two-tier(commute) rejects",
         "two-tier(strict) rejects", "lazy diverged", "base diverged"],
        [
            (
                nodes,
                lazy.rates.reconciliation_rate,
                commuting.metrics.tentative_rejected,
                strict.metrics.tentative_rejected,
                lazy.divergence,
                strict.extra["base_divergence"],
            )
            for nodes, lazy, commuting, strict in rows
        ],
        title="X1: identical mobile workload, lazy-group vs two-tier",
    ))

    lazy_rates = [lazy.rates.reconciliation_rate for _, lazy, _, _ in rows]
    # lazy-group reconciliation load grows sharply with scale
    assert lazy_rates[-1] > 5 * lazy_rates[0] > 0

    for nodes, lazy, commuting, strict in rows:
        # the section-7 claim, at every scale
        assert commuting.metrics.tentative_rejected == 0
        assert commuting.metrics.reconciliations == 0
        assert commuting.extra["base_divergence"] == 0
        # strict acceptance rejects but the master stays converged
        assert strict.extra["base_divergence"] == 0
        # every tentative transaction was adjudicated
        assert (
            strict.metrics.tentative_accepted
            + strict.metrics.tentative_rejected
            == strict.metrics.tentative_committed
        )

    strict_rejects = [s.metrics.tentative_rejected for _, _, _, s in rows]
    # strict rejections track the collision growth (more nodes, more rejects)
    assert strict_rejects[-1] > strict_rejects[0]
