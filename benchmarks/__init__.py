"""Benchmark harness regenerating every table and figure of the paper.

Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the reproduced tables and ASCII figures.)
"""
