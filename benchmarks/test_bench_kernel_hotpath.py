"""Kernel hot-path benchmark: the refactored kernel vs the frozen baseline.

The refactor's acceptance bar is a same-machine A/B: the live engine must
sustain at least 2× the events/sec of the verbatim pre-refactor copy in
:mod:`repro.sim.legacy_kernel`.  The comparison is a ratio, so it holds on
any machine — which is also how the CI perf gate consumes the
``BENCH_kernel.json`` this module (and ``repro bench``) writes.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_kernel_hotpath.py -q
"""

from pathlib import Path

import pytest

from repro.harness import bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: the refactor's headline target: current kernel >= 2x the frozen one
REQUIRED_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def payload():
    """One full measurement, shared by the assertions, persisted for CI."""
    result = bench.collect()
    bench.write(BENCH_PATH, result)
    return result


def test_engine_micro_speedup_at_least_2x(payload):
    micro = payload["engine_micro"]
    assert micro["current_events_per_sec"] > 0
    assert micro["legacy_events_per_sec"] > 0
    assert micro["speedup"] >= REQUIRED_SPEEDUP, (
        f"kernel refactor target is >= {REQUIRED_SPEEDUP}x the frozen "
        f"pre-refactor engine, measured {micro['speedup']:.2f}x"
    )


@pytest.mark.parametrize("strategy", ["eager-group", "two-tier"])
def test_workload_bench_records_rates(payload, strategy):
    workload = payload["workloads"][strategy]
    assert workload["events"] > 10_000, "canonical workload barely ran"
    assert workload["events_per_sec"] > 0
    assert workload["commits"] > 100
    assert workload["txns_per_sec"] > 0


def test_payload_written_for_perf_gate(payload):
    stored = bench.load(BENCH_PATH)
    assert stored is not None
    assert stored["engine_micro"]["speedup"] == payload["engine_micro"]["speedup"]
    # the committed baseline and a fresh measurement on this machine must
    # clear the CI gate's ratio check against each other
    assert bench.check_regression(stored, stored) == []
