"""Micro-benchmark — the discrete-event engine itself.

Not a paper artefact; this keeps the substrate honest.  The whole
reproduction rests on the engine pushing millions of lock/timeout events, so
its event throughput is tracked here (and the benchmark fails if the engine
ever becomes pathologically slow, which would silently stretch every other
benchmark's calibrated regime).
"""

import pytest

from repro.sim import Engine

EVENTS = 20_000


def churn():
    engine = Engine()
    counter = {"fired": 0}

    def proc():
        for _ in range(EVENTS // 10):
            yield engine.timeout(0.001)
            counter["fired"] += 1

    for _ in range(10):
        engine.process(proc())
    engine.run()
    return counter["fired"]


def test_bench_engine_event_throughput(benchmark):
    fired = benchmark(churn)
    assert fired == EVENTS


def test_bench_lock_conflict_path(benchmark):
    """Throughput of the contended lock/release path with waits-for upkeep."""
    from repro.storage.deadlock import DeadlockDetector
    from repro.storage.lock_manager import LockManager, LockMode

    class FakeTxn:
        __slots__ = ("txn_id",)

        def __init__(self, txn_id):
            self.txn_id = txn_id

    def contended_cycle():
        engine = Engine()
        lm = LockManager(engine, 0, DeadlockDetector())
        granted = 0
        for round_number in range(500):
            holders = [FakeTxn(round_number * 10 + i) for i in range(5)]
            events = []
            lm.acquire(holders[0], 1, LockMode.EXCLUSIVE)
            for waiter in holders[1:]:
                events.append(lm.acquire(waiter, 1, LockMode.EXCLUSIVE))
            for holder in holders:
                lm.release_all(holder)
            granted += sum(1 for e in events if e.settled)
        return granted

    granted = benchmark(contended_cycle)
    assert granted == 500 * 4
