"""Equation 19 — lazy-master deadlock rate.

"(TPS x Nodes)^2 x Action_Time x Actions^5 / (4 x DB_Size^2)" — quadratic in
Nodes, and strictly better than eager group's cubic (the paper: "slightly
less deadlock prone than eager ... primarily because the transactions have
shorter duration").
"""

import pytest

from benchmarks.conftest import MASTER_REGIME, NODE_SWEEP, measure_sweep
from repro.analytic import ModelParameters, eager, lazy_master
from repro.analytic.scaling import fit_exponent, sweep
from repro.metrics.report import format_table

ANALYTIC = ModelParameters(db_size=10_000, nodes=1, tps=10, actions=5,
                           action_time=0.01)
DURATION = 300.0


def simulate():
    lm_deadlocks = measure_sweep(
        "lazy-master", MASTER_REGIME, NODE_SWEEP,
        metric=lambda r: r.rates.deadlock_rate, duration=DURATION,
    )
    lm_waits = measure_sweep(
        "lazy-master", MASTER_REGIME, NODE_SWEEP,
        metric=lambda r: r.rates.wait_rate, duration=DURATION, seed=2,
    )
    eager_deadlocks = measure_sweep(
        "eager-group", MASTER_REGIME, NODE_SWEEP,
        metric=lambda r: r.rates.deadlock_rate, duration=DURATION,
    )
    return lm_deadlocks, lm_waits, eager_deadlocks


def test_bench_eq19(benchmark):
    lm_deadlocks, lm_waits, eager_deadlocks = benchmark.pedantic(
        simulate, rounds=1, iterations=1
    )

    # --- closed form ------------------------------------------------------ #
    r = sweep(lazy_master.deadlock_rate, ANALYTIC, "nodes", [1, 2, 5, 10])
    assert fit_exponent(r.xs, r.ys) == pytest.approx(2.0)
    # single node degenerates to equation 5
    from repro.analytic import single_node

    assert lazy_master.deadlock_rate(ANALYTIC) == pytest.approx(
        single_node.node_deadlock_rate(ANALYTIC)
    )

    # --- simulation --------------------------------------------------------- #
    print()
    print(format_table(
        ["nodes", "lazy-master deadlocks/s", "lazy-master waits/s",
         "eager-group deadlocks/s"],
        list(zip(NODE_SWEEP, lm_deadlocks, lm_waits, eager_deadlocks)),
        title="Equation 19: lazy-master versus eager-group deadlocks",
    ))
    deadlock_exp = fit_exponent(NODE_SWEEP, lm_deadlocks)
    wait_exp = fit_exponent(NODE_SWEEP, lm_waits)
    print(f"lazy-master exponents: deadlocks {deadlock_exp:.2f} "
          f"(model 2.0), waits {wait_exp:.2f} (model 2.0)")

    assert deadlock_exp == pytest.approx(2.0, abs=0.75)
    assert wait_exp == pytest.approx(2.0, abs=0.5)
    # who wins: lazy-master deadlocks strictly less than eager at every N>2
    for n, lm, eg in zip(NODE_SWEEP, lm_deadlocks, eager_deadlocks):
        if n > 2:
            assert lm < eg, f"lazy-master should beat eager at N={n}"
    # and the gap widens with N (cubic vs quadratic)
    assert eager_deadlocks[-1] / max(lm_deadlocks[-1], 1e-9) > (
        eager_deadlocks[0] / max(lm_deadlocks[0], 1e-9)
    )
