"""Ablation — committed-read versus full serializability.

The model "ignores 'true' serialization, and assumes a weak multi-version
form of committed-read serialization (no read locks)" (section 2), and
section 7 notes "The approach can be used to obtain pure serializability if
the base transaction only reads and writes master objects."

Measured: the same read-write workload with ``lock_reads`` off (the model's
assumption) and on (shared read locks at masters).  Read locks add waits —
the price of pure serializability — without changing convergence.
"""

import random

import pytest

from repro.metrics.report import format_table
from repro.replication.lazy_master import LazyMasterSystem
from repro.txn.ops import ReadOp, WriteOp
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import TransactionProfile
from repro.replication import SystemSpec

DB = 60
DURATION = 150.0


def read_write_factory(oid: int, rng: random.Random):
    """Half the actions read, half blindly write."""
    if rng.random() < 0.5:
        return ReadOp(oid)
    return WriteOp(oid, rng.randrange(1_000_000))


def run(lock_reads: bool):
    system = LazyMasterSystem(
        SystemSpec(num_nodes=3, db_size=DB, action_time=0.01, seed=3,
                   lock_reads=lock_reads),
    )
    profile = TransactionProfile(actions=4, db_size=DB,
                                 op_factory=read_write_factory)
    workload = WorkloadGenerator(system, profile, tps=4.0)
    workload.start(DURATION)
    system.run()
    assert system.converged()
    return (system.metrics.waits / DURATION,
            system.metrics.deadlocks / DURATION,
            system.metrics.commits)


def simulate():
    return {"committed-read": run(False), "serializable": run(True)}


def test_bench_serializability(benchmark):
    results = benchmark.pedantic(simulate, rounds=1, iterations=1)
    print()
    print(format_table(
        ["isolation", "waits/s", "deadlocks/s", "commits"],
        [(name, *vals) for name, vals in results.items()],
        title="Serializability ablation: the cost of read locks",
    ))
    committed_read = results["committed-read"]
    serializable = results["serializable"]
    # read locks create strictly more waiting
    assert serializable[0] > committed_read[0]
    # both isolate enough to converge and commit comparable work
    assert serializable[2] > 0.8 * committed_read[2]
