"""Ablation — the reconciliation rule library (Oracle 7's twelve rules, §6).

"Oracle 7 provides a choice of twelve reconciliation rules to merge
conflicting updates... These rules give priority [to] certain sites, or time
priority, or value priority, or they merge commutative updates."

The same racing increment workload runs under each rule; the table shows the
trade each rule makes between convergence, lost updates, and unresolved
conflicts (the manual rule's backlog is the road to system delusion).
"""

import pytest

from repro.metrics.report import format_table
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.reconciliation import (
    LatestTimestampWins,
    ManualReconciliation,
    MergeCommutative,
    SitePriorityWins,
    ValuePriorityWins,
)
from repro.txn.ops import IncrementOp
from repro.replication import SystemSpec

NODES = 3
TRIALS = 20
# node i increments by i+1, so surviving values are distinguishable and the
# full serial total is 1+2+3
EXPECTED_TOTAL = sum(range(1, NODES + 1))


def run_rule(rule, propagate_ops=False):
    reconciliations = lost = diverged = 0
    for trial in range(TRIALS):
        system = LazyGroupSystem(
            SystemSpec(num_nodes=NODES, db_size=2, action_time=0.001,
                       message_delay=0.5, seed=trial),
            rule=rule,
            propagate_ops=propagate_ops,
        )
        for origin in range(NODES):
            system.submit(origin, [IncrementOp(0, origin + 1)])
        system.run()
        reconciliations += system.metrics.reconciliations
        diverged += system.divergence()
        if system.divergence() == 0:
            lost += EXPECTED_TOTAL - system.nodes[0].store.value(0)
    return (reconciliations / TRIALS, lost / TRIALS, diverged / TRIALS)


def simulate():
    return {
        "latest-timestamp": run_rule(LatestTimestampWins()),
        "site-priority": run_rule(SitePriorityWins({0: 10, 1: 5, 2: 1})),
        "value-priority": run_rule(ValuePriorityWins()),
        "merge-commutative": run_rule(MergeCommutative(), propagate_ops=True),
        "manual (defer)": run_rule(ManualReconciliation()),
    }


def test_bench_reconciliation_rules(benchmark):
    results = benchmark.pedantic(simulate, rounds=1, iterations=1)
    print()
    print(format_table(
        ["rule", "reconciliations/round", "updates lost/round",
         "diverged objects/round"],
        [(name, *vals) for name, vals in results.items()],
        title=(
            f"Reconciliation rules on {NODES} racing increments "
            f"(mean of {TRIALS} rounds)"
        ),
    ))

    # every rule detects the same conflicts
    for name, (reconciliations, _, _) in results.items():
        assert reconciliations > 0, name

    # timestamp / site / value priority converge but lose updates
    for name in ["latest-timestamp", "site-priority", "value-priority"]:
        _, lost, diverged = results[name]
        assert diverged == 0, name
        assert lost > 0, name

    # the commutative merge keeps everything
    _, lost, diverged = results["merge-commutative"]
    assert lost == 0
    assert diverged == 0

    # the manual rule leaves the system diverged: unresolved conflicts
    _, _, diverged = results["manual (defer)"]
    assert diverged > 0
