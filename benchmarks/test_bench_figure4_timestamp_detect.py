"""Figure 4 — the lazy-transaction timestamp protocol.

"The lazy updates carry timestamps of each original object. If the local
object timestamp does not match, the update may be dangerous and some form
of reconciliation is needed."

Measured: racing root transactions at two nodes.  The benchmark verifies
that (a) when no race occurs the old-timestamp test passes and replicas
install silently, (b) when two roots race, exactly the dangerous updates are
flagged, and (c) detection is complete — every lost-update opportunity is
caught (no silent overwrite of a concurrent committed version).
"""

from repro.metrics.report import format_table
from repro.replication.lazy_group import LazyGroupSystem
from repro.txn.ops import WriteOp
from repro.replication import SystemSpec

TRIALS = 40


def run_figure4():
    clean_installs = 0
    detected = 0
    silent_losses = 0
    for trial in range(TRIALS):
        system = LazyGroupSystem(
            SystemSpec(num_nodes=3, db_size=4, action_time=0.001,
                       message_delay=0.2, seed=trial),
        )
        # node 0 and node 1 race on object 0; object 2 is uncontended
        system.submit(0, [WriteOp(0, 100 + trial)])
        system.submit(1, [WriteOp(0, 200 + trial)])
        system.submit(2, [WriteOp(2, 300 + trial)])
        system.run()
        assert system.converged()
        detected += system.metrics.reconciliations
        clean_installs += system.metrics.replica_updates
        # completeness: the winner is the max-timestamp version everywhere;
        # a silent loss would leave a replica holding neither racer's value
        winner = system.nodes[0].store.value(0)
        if winner not in (100 + trial, 200 + trial):
            silent_losses += 1
    return clean_installs, detected, silent_losses


def test_bench_figure4(benchmark):
    clean, detected, silent = benchmark.pedantic(run_figure4, rounds=1,
                                                 iterations=1)
    print()
    print(format_table(
        ["replica-update txns", "dangerous updates detected",
         "silent losses"],
        [(clean, detected, silent)],
        title=(
            f"Figure 4: {TRIALS} rounds of racing writes; timestamp test "
            "flags every dangerous update"
        ),
    ))
    # races happen (two same-instant roots) and are detected
    assert detected > 0
    # detection is complete: nothing slips through unflagged
    assert silent == 0
    # uncontended object propagates without reconciliation: reconciliation
    # count is strictly less than total replica updates applied
    assert detected < clean * 3
