"""Equation 14 — lazy-group reconciliation rate (connected operation).

"Transactions that would wait in an eager replication system face
reconciliation in a lazy-group replication system ... the system-wide
lazy-group reconciliation rate follows the transaction wait rate equation
(Equation 10)" — cubic in (Actions x Nodes).
"""

import pytest

from repro.analytic import ModelParameters, eager, lazy_group
from repro.analytic.scaling import amplification, fit_exponent, sweep
from repro.harness import ExperimentConfig, run_experiment
from repro.metrics.report import format_series, format_table

ANALYTIC = ModelParameters(db_size=10_000, nodes=1, tps=10, actions=5,
                           action_time=0.01)
REGIME = ModelParameters(db_size=80, nodes=1, tps=4, actions=3,
                         action_time=0.01, message_delay=0.05)
NODES = [2, 3, 4, 6]
DURATION = 200.0


def simulate():
    rates = []
    for nodes in NODES:
        result = run_experiment(
            ExperimentConfig(strategy="lazy-group",
                             params=REGIME.with_(nodes=nodes),
                             duration=DURATION, seed=1)
        )
        rates.append(result.rates.reconciliation_rate)
    return rates


def test_bench_eq14(benchmark):
    rates = benchmark.pedantic(simulate, rounds=1, iterations=1)

    # --- closed form ---------------------------------------------------- #
    assert lazy_group.reconciliation_rate(ANALYTIC) == pytest.approx(
        eager.total_wait_rate(ANALYTIC)
    )
    r = sweep(lazy_group.reconciliation_rate, ANALYTIC, "nodes",
              [1, 2, 5, 10])
    assert fit_exponent(r.xs, r.ys) == pytest.approx(3.0)
    assert amplification(
        lazy_group.reconciliation_rate, ANALYTIC, "nodes", 10
    ) == pytest.approx(1000.0)

    # --- simulation ------------------------------------------------------ #
    print()
    print(format_series(NODES, rates, x_label="nodes",
                        y_label="measured reconciliations/s"))
    print(format_table(
        ["nodes", "simulated reconciliations/s"],
        list(zip(NODES, rates)),
        title="Equation 14: lazy-group reconciliation rate, connected",
    ))
    fitted = fit_exponent(NODES, rates)
    print(f"measured exponent: {fitted:.2f} (model: 3.0)")
    assert fitted == pytest.approx(3.0, abs=0.75)
    # the frightening headline, in simulation: 3x nodes -> >= ~20x conflicts
    assert rates[-1] > 20 * rates[0]
