"""Equations 6-8 — eager transaction size, duration, and the N^2 explosion.

Measured directly from simulated eager transactions: size = Actions x Nodes,
duration = Actions x Nodes x Action_Time, and the system-wide action rate
growing quadratically while per-node TPS stays fixed.
"""

import pytest

from repro.analytic import ModelParameters, eager
from repro.analytic.scaling import fit_exponent
from repro.metrics.report import format_table
from repro.replication.eager_group import EagerGroupSystem
from repro.txn.ops import WriteOp
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import uniform_update_profile
from repro.replication import SystemSpec

ACTIONS = 3
ACTION_TIME = 0.01
TPS = 2.0
DURATION = 100.0


def measure_growth():
    rows = []
    for nodes in [1, 2, 4, 8]:
        # one probe transaction measures size/duration without interference
        probe_system = EagerGroupSystem(
            SystemSpec(num_nodes=nodes, db_size=50, action_time=ACTION_TIME),
        )
        p = probe_system.submit(0, [WriteOp(i, 1) for i in range(ACTIONS)])
        probe_system.run()
        size = probe_system.metrics.actions
        duration = p.value.duration

        # a loaded run measures the aggregate action rate
        system = EagerGroupSystem(
            SystemSpec(num_nodes=nodes, db_size=200, action_time=0.0,
                       seed=nodes),
        )
        workload = WorkloadGenerator(
            system, uniform_update_profile(actions=ACTIONS, db_size=200),
            tps=TPS,
        )
        workload.start(DURATION)
        system.run()
        action_rate = system.metrics.actions / DURATION
        rows.append((nodes, size, duration, action_rate))
    return rows


def test_bench_eq6_8(benchmark):
    rows = benchmark.pedantic(measure_growth, rounds=1, iterations=1)
    params = ModelParameters(db_size=200, nodes=1, tps=TPS, actions=ACTIONS,
                             action_time=ACTION_TIME)
    print()
    print(format_table(
        ["nodes", "txn size (eq 6a)", "txn duration (eq 6b)",
         "action rate/s (eq 8)"],
        rows,
        title="Equations 6-8: eager transaction growth, measured",
    ))

    for nodes, size, duration, action_rate in rows:
        q = params.with_(nodes=nodes)
        # equation 6: size and duration grow exactly linearly in N
        assert size == eager.transaction_size(q)
        assert duration == pytest.approx(eager.transaction_duration(q))
        # equation 8: action rate tracks TPS x Actions x N^2
        assert action_rate == pytest.approx(eager.action_rate(q), rel=0.2)

    xs = [r[0] for r in rows]
    rates = [r[3] for r in rows]
    fitted = fit_exponent(xs, rates)
    print(f"measured action-rate exponent: {fitted:.2f} (model: 2.0)")
    assert fitted == pytest.approx(2.0, abs=0.2)
