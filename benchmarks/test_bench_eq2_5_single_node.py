"""Equations 2-5 — single-node wait and deadlock rates, analytic vs simulated.

The warm-up of section 3: a single node running the Table-2 workload.  The
benchmark measures the wait rate and deadlock rate of the simulator and
compares them with the closed forms, then checks the model's scaling facts
(quintic in Actions, quadratic in TPS).
"""

import pytest

from repro.analytic import ModelParameters, single_node
from repro.analytic.scaling import fit_exponent, sweep
from repro.harness import ExperimentConfig, run_experiment
from repro.metrics.report import format_table

# dilute enough that PW << 1 (the model's validity region), contended
# enough that waits are measurable in a short run
PARAMS = ModelParameters(db_size=100, nodes=1, tps=10, actions=4,
                         action_time=0.01)
DURATION = 500.0


def simulate():
    result = run_experiment(
        ExperimentConfig(strategy="eager-group", params=PARAMS,
                         duration=DURATION, seed=3)
    )
    return result


def test_bench_eq2_5(benchmark):
    result = benchmark.pedantic(simulate, rounds=1, iterations=1)

    predicted_wait_rate = single_node.node_wait_rate(PARAMS)
    predicted_deadlock_rate = single_node.node_deadlock_rate(PARAMS)
    measured_wait_rate = result.rates.wait_rate
    measured_deadlock_rate = result.rates.deadlock_rate

    print()
    print(format_table(
        ["quantity", "analytic", "simulated", "sim/analytic"],
        [
            ("wait rate (eq 2 x TPS)", predicted_wait_rate,
             measured_wait_rate,
             measured_wait_rate / predicted_wait_rate),
            ("deadlock rate (eq 5)", predicted_deadlock_rate,
             measured_deadlock_rate,
             "-" if predicted_deadlock_rate == 0 else
             measured_deadlock_rate / predicted_deadlock_rate),
        ],
        title=f"Equations 2-5 at {PARAMS.describe()}, {DURATION:.0f}s horizon",
    ))

    # the simulated wait rate tracks the closed form within 2x
    assert measured_wait_rate == pytest.approx(predicted_wait_rate, rel=1.0)
    # deadlocks are rare^2: at these parameters the model predicts ~0.0013/s
    # (~0.6 per run); the count must be of that order, not 10x off
    assert result.metrics.deadlocks <= 20

    # analytic scaling facts of equations 2-5
    r = sweep(single_node.node_deadlock_rate, PARAMS, "actions", [2, 4, 8])
    assert fit_exponent(r.xs, r.ys) == pytest.approx(5.0)
    r = sweep(single_node.node_deadlock_rate, PARAMS, "tps", [5, 10, 20])
    assert fit_exponent(r.xs, r.ys) == pytest.approx(2.0)
    r = sweep(single_node.wait_probability, PARAMS, "db_size",
              [100, 1000, 10_000])
    assert fit_exponent(r.xs, r.ys) == pytest.approx(-1.0)
