"""Extension — the TPC-B scaled-database scenario behind equation 13.

"one might imagine that the database size grows with the number of nodes
(as in the checkbook example earlier, or in the TPC-A, TPC-B, and TPC-C
benchmarks). More nodes, and more transactions mean more data."

The TPC-B workload *is* that scenario: each node brings its own branch (and
the branch's tellers, accounts, and history), so database size grows
linearly with the node count while each node's transaction rate stays
fixed.  Eager replication of the growing database shows the tamed
equation-13 growth, and the TPC-B branch = sum(tellers) invariant holds at
every scale.
"""

import pytest

from repro.analytic.scaling import fit_exponent
from repro.metrics.report import format_table
from repro.replication.eager_group import EagerGroupSystem
from repro.workload.generator import WorkloadGenerator
from repro.workload.tpcb import TpcbLayout, TpcbProfile, branch_balance_invariant
from repro.replication import SystemSpec

NODES = [2, 3, 4]
TPS = 3.0
DURATION = 100.0


def simulate():
    rows = []
    for nodes in NODES:
        layout = TpcbLayout(branches=nodes)  # DB grows with the cluster
        profile = TpcbProfile(layout, remote_fraction=0.15)
        system = EagerGroupSystem(
            SystemSpec(num_nodes=nodes, db_size=layout.db_size,
                       action_time=0.002, seed=1, retry_deadlocks=True),
        )
        workload = WorkloadGenerator(system, profile, tps=TPS)
        workload.start(DURATION)
        system.run()
        assert system.converged()
        invariant_ok = branch_balance_invariant(system.nodes[0].store, layout)
        rows.append((
            nodes,
            layout.db_size,
            system.metrics.commits,
            system.metrics.waits / DURATION,
            system.metrics.deadlocks / DURATION,
            invariant_ok,
        ))
    return rows


def test_bench_tpcb_scaling(benchmark):
    rows = benchmark.pedantic(simulate, rounds=1, iterations=1)
    print()
    print(format_table(
        ["nodes (=branches)", "db objects", "commits", "waits/s",
         "deadlocks/s", "branch==sum(tellers)"],
        rows,
        title="TPC-B with the database scaled to the cluster (eq 13 regime)",
    ))

    # the invariant holds at every scale: no update was ever lost
    assert all(row[5] for row in rows)
    # throughput scales with nodes (per-node TPS constant)
    commits = [row[2] for row in rows]
    assert commits[-1] > commits[0] * (NODES[-1] / NODES[0]) * 0.7
    # contention growth stays tame because branch hotspots do not shrink
    # relative to traffic: waits grow far slower than the fixed-DB cubic
    waits = [row[3] for row in rows]
    if all(w > 0 for w in waits):
        exponent = fit_exponent(NODES, waits)
        print(f"wait-rate exponent: {exponent:.2f} "
              "(fixed-DB eager would be ~3)")
        assert exponent < 2.8