"""Equations 9-12 — the headline result: eager deadlocks grow as Nodes^3.

"Going from one-node to ten nodes increases the deadlock rate a thousand
fold."

The analytic sweep reproduces the exponents exactly (3 in Nodes, 5 in
Actions) and the 1000x amplification.  The simulated sweep runs the
calibrated contention regime and checks the measured growth is compatible
with the cubic law (the closed system adds the time-dilation the model
ignores, so the measured exponent sits slightly above 3; see
EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import (
    EAGER_REGIME,
    NODE_SWEEP,
    assert_exponent,
    measure_sweep,
)
from repro.analytic import ModelParameters, eager
from repro.analytic.scaling import amplification, fit_exponent, sweep
from repro.metrics.report import format_series, format_table

ANALYTIC = ModelParameters(db_size=10_000, nodes=1, tps=10, actions=5,
                           action_time=0.01)
DURATION = 200.0


def simulate_sweep():
    deadlock_rates = measure_sweep(
        "eager-group", EAGER_REGIME, NODE_SWEEP,
        metric=lambda r: r.rates.deadlock_rate, duration=DURATION,
    )
    wait_rates = measure_sweep(
        "eager-group", EAGER_REGIME, NODE_SWEEP,
        metric=lambda r: r.rates.wait_rate, duration=DURATION, seed=2,
    )
    return deadlock_rates, wait_rates


def test_bench_eq9_12(benchmark):
    deadlock_rates, wait_rates = benchmark.pedantic(
        simulate_sweep, rounds=1, iterations=1
    )

    # --- the paper's closed forms, exactly ---------------------------- #
    r = sweep(eager.total_deadlock_rate, ANALYTIC, "nodes", [1, 2, 5, 10])
    assert fit_exponent(r.xs, r.ys) == pytest.approx(3.0)
    assert amplification(
        eager.total_deadlock_rate, ANALYTIC, "nodes", 10
    ) == pytest.approx(1000.0)
    assert amplification(
        eager.total_deadlock_rate, ANALYTIC, "actions", 10
    ) == pytest.approx(100_000.0)
    r10 = sweep(eager.total_wait_rate, ANALYTIC, "nodes", [1, 2, 5, 10])
    assert fit_exponent(r10.xs, r10.ys) == pytest.approx(3.0)

    # --- the simulator reproduces the shape --------------------------- #
    print()
    print(format_series(NODE_SWEEP, deadlock_rates, x_label="nodes",
                        y_label="measured eager deadlocks/s"))
    print(format_series(NODE_SWEEP, wait_rates, x_label="nodes",
                        y_label="measured eager waits/s"))
    print(format_table(
        ["nodes", "analytic deadlocks/s (eq 12)", "simulated deadlocks/s"],
        [
            (n, eager.total_deadlock_rate(EAGER_REGIME.with_(nodes=n)), d)
            for n, d in zip(NODE_SWEEP, deadlock_rates)
        ],
        title="Equation 12 versus simulation (calibrated regime)",
    ))

    deadlock_exp = assert_exponent(
        NODE_SWEEP, deadlock_rates, expected=3.0, tolerance=1.0,
        label="eager deadlock rate",
    )
    wait_exp = assert_exponent(
        NODE_SWEEP, wait_rates, expected=3.0, tolerance=1.0,
        label="eager wait rate",
    )
    print(f"measured exponents: deadlocks {deadlock_exp:.2f}, "
          f"waits {wait_exp:.2f} (model: 3.0)")

    # the qualitative headline: 3x nodes >= ~10x deadlocks in simulation
    assert deadlock_rates[-1] > 8 * deadlock_rates[0]
