"""Table 1 — the replication-strategy taxonomy, measured from the systems.

The paper's table says how many transactions and object owners each strategy
needs to propagate one update to N nodes.  This benchmark runs one update
through each implemented strategy at N=3 and counts the actual transactions,
then prints the reproduced table.
"""

from repro.analytic.tables import expected_transaction_count, render_table_1
from repro.core import AlwaysAccept, TwoTierSystem
from repro.metrics.report import format_table
from repro.replication.eager_group import EagerGroupSystem
from repro.replication.eager_master import EagerMasterSystem
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.lazy_master import LazyMasterSystem
from repro.txn.ops import IncrementOp
from repro.replication import SystemSpec

N = 3


def measure_taxonomy():
    rows = []

    for name, cls, ownership in [
        ("lazy-group", LazyGroupSystem, "N"),
        ("eager-group", EagerGroupSystem, "N"),
        ("lazy-master", LazyMasterSystem, "1"),
        ("eager-master", EagerMasterSystem, "1"),
    ]:
        system = cls(num_nodes=N, db_size=10, action_time=0.001)
        system.submit(0, [IncrementOp(5, 1)])
        system.run()
        txns = system.metrics.commits + system.metrics.replica_updates
        rows.append((name, txns, ownership))

    # two-tier: tentative at the mobile + base txn + replica updates
    system = TwoTierSystem(
        SystemSpec(num_nodes=1 + N - 1, db_size=10, action_time=0.001),
        num_base=1,
    )
    system.disconnect_mobile(1)
    system.mobile(1).submit_tentative([IncrementOp(5, 1)], AlwaysAccept())
    system.run()
    system.reconnect_mobile(1)
    system.run()
    txns = (
        system.metrics.tentative_committed
        + system.metrics.commits
        + system.metrics.replica_updates
    )
    rows.append(("two-tier", txns, "1"))
    return rows


def test_bench_table1(benchmark):
    rows = benchmark.pedantic(measure_taxonomy, rounds=1, iterations=1)
    print()
    print(render_table_1())
    print()
    print(format_table(
        ["strategy", "measured transactions (N=3)", "object owners"],
        rows,
        title="Table 1 reproduced by measurement:",
    ))

    measured = {name: txns for name, txns, _ in rows}
    assert measured["eager-group"] == expected_transaction_count("eager", N)
    assert measured["eager-master"] == expected_transaction_count("eager", N)
    assert measured["lazy-group"] == expected_transaction_count("lazy", N)
    assert measured["lazy-master"] == expected_transaction_count("lazy", N)
    # two-tier: N+1 transactions (tentative + base + N-1 replica refreshes;
    # the paper's "N+1 transactions, one object owner" row)
    assert measured["two-tier"] == expected_transaction_count("two-tier", N)
