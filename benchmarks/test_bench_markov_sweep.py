"""Markov fast-path benchmark: thousand-cell sweeps in seconds.

The Markov track's reason to exist is throughput: parameter grids the DES
grinds through in hours should fall out of the chain solver in seconds.
This bench times a (nodes × txn-size × update-rate) grid of >= 1000 cells
through :func:`repro.analytic.markov_strategies.predict`, times a small
DES sample on the same regime for the speedup denominator, and records
both to ``BENCH_markov.json`` for the CI artifact.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_markov_sweep.py -q
"""

import json
import math
import time
from pathlib import Path

import pytest

from repro.analytic.parameters import ModelParameters
from repro.analytic.markov_strategies import predict
from repro.harness import ExperimentConfig, run_experiment

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_markov.json"

#: the acceptance bar: the full grid in under this many wall-clock seconds
TIME_BUDGET_SECONDS = 10.0

STRATEGY = "eager-group"
BASE = ModelParameters(db_size=500, nodes=2, tps=1.0, actions=2,
                       action_time=0.01)

# 10 x 10 x 12 = 1200 cells
NODE_AXIS = tuple(range(2, 12))
ACTION_AXIS = tuple(range(2, 12))
TPS_AXIS = tuple(0.5 * i for i in range(1, 13))

#: DES sample cells for the speedup denominator (virtual seconds each)
DES_SAMPLE_NODES = (2, 4)
DES_DURATION = 60.0


def _run_grid():
    """Solve every grid cell; return (elapsed, predictions)."""
    started = time.perf_counter()
    predictions = {}
    for nodes in NODE_AXIS:
        for actions in ACTION_AXIS:
            for tps in TPS_AXIS:
                p = BASE.with_(nodes=nodes, actions=actions, tps=tps)
                predictions[(nodes, actions, tps)] = predict(STRATEGY, p)
    return time.perf_counter() - started, predictions


def _run_des_sample():
    """Time a couple of DES cells on the same regime."""
    started = time.perf_counter()
    for nodes in DES_SAMPLE_NODES:
        config = ExperimentConfig(
            strategy=STRATEGY,
            params=BASE.with_(nodes=nodes, tps=4.0, actions=3, db_size=80),
            duration=DES_DURATION,
            seed=0,
        )
        result = run_experiment(config)
        assert result.metrics.commits > 0
    return time.perf_counter() - started


@pytest.fixture(scope="module")
def payload():
    """One full measurement, shared by the assertions, persisted for CI."""
    markov_elapsed, predictions = _run_grid()
    des_elapsed = _run_des_sample()
    cells = len(predictions)
    markov_per_cell = markov_elapsed / cells
    des_per_cell = des_elapsed / len(DES_SAMPLE_NODES)
    data = {
        "schema": 1,
        "strategy": STRATEGY,
        "grid": {
            "nodes": list(NODE_AXIS),
            "actions": list(ACTION_AXIS),
            "tps": list(TPS_AXIS),
            "cells": cells,
        },
        "markov": {
            "elapsed_seconds": markov_elapsed,
            "cells_per_sec": cells / markov_elapsed,
            "seconds_per_cell": markov_per_cell,
        },
        "des_sample": {
            "cells": len(DES_SAMPLE_NODES),
            "virtual_duration": DES_DURATION,
            "elapsed_seconds": des_elapsed,
            "seconds_per_cell": des_per_cell,
        },
        "speedup_per_cell": des_per_cell / markov_per_cell,
        "time_budget_seconds": TIME_BUDGET_SECONDS,
    }
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data, predictions


def test_grid_is_at_least_1000_cells(payload):
    data, predictions = payload
    assert data["grid"]["cells"] >= 1000
    assert len(predictions) == data["grid"]["cells"]


def test_grid_completes_within_the_time_budget(payload):
    data, _ = payload
    assert data["markov"]["elapsed_seconds"] < TIME_BUDGET_SECONDS, (
        f"{data['grid']['cells']} cells took "
        f"{data['markov']['elapsed_seconds']:.2f}s; "
        f"budget is {TIME_BUDGET_SECONDS}s"
    )


def test_solver_is_orders_of_magnitude_faster_than_des(payload):
    data, _ = payload
    assert data["speedup_per_cell"] > 10.0, (
        "the fast path must beat the DES per cell by a wide margin, "
        f"measured {data['speedup_per_cell']:.1f}x"
    )


def test_every_cell_is_finite_and_well_formed(payload):
    _, predictions = payload
    for key, pred in predictions.items():
        assert sum(pred.pi) == pytest.approx(1.0, abs=1e-9), key
        for value in (pred.commit_rate, pred.deadlock_rate,
                      pred.wait_rate, pred.reconciliation_rate):
            assert math.isfinite(value) and value >= 0.0, key


def test_danger_grows_along_every_grid_axis(payload):
    _, predictions = payload
    mid_tps = TPS_AXIS[len(TPS_AXIS) // 2]
    node_curve = [predictions[(n, 4, mid_tps)].deadlock_rate
                  for n in NODE_AXIS]
    action_curve = [predictions[(4, a, mid_tps)].deadlock_rate
                    for a in ACTION_AXIS]
    tps_curve = [predictions[(4, 4, t)].deadlock_rate for t in TPS_AXIS]
    for curve in (node_curve, action_curve, tps_curve):
        assert all(b >= a * (1 - 1e-9) for a, b in zip(curve, curve[1:]))
        assert curve[-1] > curve[0] > 0.0


def test_payload_written_with_ci_schema(payload):
    data, _ = payload
    stored = json.loads(BENCH_PATH.read_text())
    assert stored == data
    for key in ("schema", "strategy", "grid", "markov", "des_sample",
                "speedup_per_cell"):
        assert key in stored, f"CI artifact schema missing {key!r}"
