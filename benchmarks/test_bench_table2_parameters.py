"""Table 2 — the model parameter glossary, rendered and validated."""

from repro.analytic import ModelParameters
from repro.analytic.tables import TABLE_2, render_table_2


def build_table():
    p = ModelParameters(db_size=10_000, nodes=10, tps=10, actions=5,
                        action_time=0.01, disconnect_time=3600.0,
                        time_between_disconnects=82_800.0)
    return p, render_table_2(p)


def test_bench_table2(benchmark):
    p, text = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(text)
    # every Table 2 row resolves against the live parameter object
    for name, (description, attr) in TABLE_2.items():
        assert hasattr(p, attr)
        assert name in text
    # the derived Transactions row equals equation 1
    assert p.transactions == p.tps * p.actions * p.action_time
