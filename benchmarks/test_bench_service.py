"""Service benchmark: the gateway + loadtest pair under the acceptance bar.

The acceptance criterion for real-time service mode is absolute: with at
least 100 concurrent clients, the gateway must sustain >= 1000 committed
transactions/sec, oracle-clean, with p99 latency on record.  This module
measures it (everything on one loop, the conservative configuration) and
persists ``BENCH_service.json`` for the CI ``service-smoke`` gate.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_service.py -q
"""

import json
from pathlib import Path

import pytest

from repro.service import bench

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


@pytest.fixture(scope="module")
def payload():
    """One full measurement, shared by the assertions, persisted for CI."""
    result = bench.collect()
    with BENCH_PATH.open("w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return result


def test_meets_the_committed_throughput_floor(payload):
    assert payload["clients"] >= 100
    assert payload["throughput_committed_per_sec"] >= bench.COMMITTED_FLOOR, (
        f"service floor is {bench.COMMITTED_FLOOR:.0f} committed txns/sec "
        f"with {payload['clients']} clients, measured "
        f"{payload['throughput_committed_per_sec']:.1f}/s"
    )


def test_latency_percentiles_recorded(payload):
    latency = payload["latency_ms"]
    assert latency["count"] == payload["completed"]
    for key in ("p50", "p95", "p99", "max"):
        assert latency[key] is not None
        assert latency[key] > 0
    assert latency["p50"] <= latency["p95"] <= latency["p99"]


def test_drained_state_is_oracle_clean(payload):
    oracle = payload["oracle"]
    assert oracle["ok"], oracle
    assert oracle["base_divergence"] == 0
    assert oracle["wal_quiescent"] is True
    assert oracle["lost_replies"] == 0


def test_no_client_side_losses(payload):
    assert payload["errors"] == 0
    assert payload["lost"] == 0
    assert payload["completed"] == payload["sent"]


def test_gate_passes_on_the_fresh_payload(payload):
    assert bench.check(payload) == []


def test_payload_written_for_ci(payload):
    stored = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    assert stored["benchmark"] == "service-gateway"
    assert stored["schema"] == 1
    assert bench.check(stored) == []
