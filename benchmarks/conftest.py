"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables, figures, or equation
families: it prints the reproduced artefact (run pytest with ``-s`` to see
the tables) and asserts the paper's *shape* — fitted growth exponents for the
analytic curves exactly, simulated curves within a statistical tolerance.

Calibrated simulation regimes (chosen so rare events are measurable on a
laptop in seconds; see EXPERIMENTS.md for the regime discussion):

* ``EAGER_REGIME`` — moderate contention; eager deadlock growth is cleanly
  super-quadratic (analytic: cubic; the closed-system simulation adds the
  time-dilation the model explicitly ignores, steepening it slightly).
* ``MASTER_REGIME`` — high contention so lazy-master deadlocks (a rare^2
  event at N^2 rate) actually occur.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import pytest

from repro.analytic import ModelParameters
from repro.analytic.scaling import fit_exponent
from repro.harness import ExperimentConfig, run_experiment

EAGER_REGIME = ModelParameters(db_size=80, nodes=1, tps=4, actions=3,
                               action_time=0.01)
MASTER_REGIME = ModelParameters(db_size=30, nodes=1, tps=6, actions=3,
                                action_time=0.01)
ANALYTIC_REGIME = ModelParameters(db_size=10_000, nodes=1, tps=10, actions=5,
                                  action_time=0.01)

NODE_SWEEP = [2, 3, 4, 6]


def measure_sweep(
    strategy: str,
    base: ModelParameters,
    nodes_values: Sequence[int],
    metric: Callable,
    duration: float,
    seed: int = 1,
    **config_kwargs,
) -> List[float]:
    """Simulated rates of ``metric`` along a node sweep."""
    rates = []
    for nodes in nodes_values:
        result = run_experiment(
            ExperimentConfig(
                strategy=strategy,
                params=base.with_(nodes=nodes),
                duration=duration,
                seed=seed,
                **config_kwargs,
            )
        )
        rates.append(metric(result))
    return rates


def assert_exponent(xs, ys, expected: float, tolerance: float,
                    label: str = "") -> float:
    """Fit and check a growth exponent; returns the fitted value."""
    fitted = fit_exponent(xs, ys)
    assert abs(fitted - expected) <= tolerance, (
        f"{label}: fitted exponent {fitted:.2f} not within {tolerance} of "
        f"{expected} (series {list(zip(xs, ys))})"
    )
    return fitted


@pytest.fixture()
def eager_regime() -> ModelParameters:
    return EAGER_REGIME


@pytest.fixture()
def master_regime() -> ModelParameters:
    return MASTER_REGIME


@pytest.fixture()
def analytic_regime() -> ModelParameters:
    return ANALYTIC_REGIME
