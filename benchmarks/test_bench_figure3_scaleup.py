"""Figure 3 — scaleup, partitioning, and replication growth.

"Notice that each of the replicated servers at the lower right of the
illustration is performing 2 TPS and the aggregate rate is 4 TPS. Doubling
the users increased the total workload by a factor of four."

Measured: the per-server and aggregate action rates of the figure's three
2-node designs —

* partitioned: two 1-TPS servers, each owning half the data, no replication;
* replicated: two servers, each originating 1 TPS and also applying the
  other's updates (so each does 2 TPS of update work; N^2 aggregate growth);

— plus the analytic equation-8 curve confirming the N^2 law.

Both measured designs run through the campaign runner
(:mod:`repro.harness.campaign`): each design is a declarative grid cell,
and the worker pool executes the cells in parallel.
"""

import pytest

from repro.analytic import eager as eager_eqs
from repro.analytic import ModelParameters
from repro.analytic.scaling import fit_exponent, sweep
from repro.harness.campaign import Campaign, run_campaign
from repro.metrics.report import format_series, format_table

TPS = 1.0
ACTIONS = 2
DURATION = 200.0
JOBS = 2


def run_partitioned():
    """Two independent 1-TPS servers over disjoint halves of the data:
    modelled as two separate single-node systems (one campaign cell per
    half, distinguished by seed)."""
    campaign = Campaign(
        strategies=("eager-group",),
        base_params=ModelParameters(db_size=50, nodes=1, tps=TPS,
                                    actions=ACTIONS, action_time=0.0),
        seeds=(0, 1),
        duration=DURATION,
    )
    outcome = run_campaign(campaign, jobs=JOBS)
    return sum(o.payload["rates"]["action_rate"] for o in outcome.outcomes)


def run_replicated():
    campaign = Campaign(
        strategies=("eager-group",),
        base_params=ModelParameters(db_size=100, nodes=2, tps=TPS,
                                    actions=ACTIONS, action_time=0.0),
        seeds=(0,),
        duration=DURATION,
    )
    outcome = run_campaign(campaign, jobs=JOBS)
    return outcome.outcomes[0].payload["rates"]["action_rate"]


def analytic_curve():
    base = ModelParameters(db_size=100, nodes=1, tps=TPS, actions=ACTIONS,
                           action_time=0.0)
    return sweep(eager_eqs.action_rate, base, "nodes", [1, 2, 4, 8, 16])


def run_figure3():
    return run_partitioned(), run_replicated(), analytic_curve()


def test_bench_figure3(benchmark):
    partitioned, replicated, curve = benchmark.pedantic(
        run_figure3, rounds=1, iterations=1
    )
    print()
    print(format_table(
        ["design", "aggregate update actions / s"],
        [
            ("partitioned (2 x 1 TPS)", partitioned),
            ("replicated (2 x 1 TPS)", replicated),
        ],
        title="Figure 3: partitioning vs replication, 2 servers at 1 TPS each",
    ))
    print()
    print(format_series(curve.xs, curve.ys, x_label="nodes",
                        y_label="action rate (eq 8)"))

    # partitioning: total work tracks total TPS (2 x 1 x ACTIONS = 2/s)
    assert partitioned == pytest.approx(2 * TPS * ACTIONS, rel=0.2)
    # replication: doubling the servers quadrupled the update work (4/s)
    assert replicated == pytest.approx(4 * TPS * ACTIONS, rel=0.2)
    assert replicated / partitioned == pytest.approx(2.0, rel=0.25)
    # equation 8 is exactly quadratic
    assert fit_exponent(curve.xs, curve.ys) == pytest.approx(2.0)
