"""Equation 13 — scaling the database with the node count.

"Now a ten-fold growth in the number of nodes creates only a ten-fold growth
in the deadlock rate. This is still an unstable situation, but it is a big
improvement over equation (12)."

Analytic check: the deadlock exponent drops from 3 to exactly 1.  Simulated
check (averaged over seeds, since dilute deadlocks are rare events): the
same eager sweep with DB_Size proportional to Nodes is dramatically flatter
than the fixed-DB sweep, and the wait-rate exponents — the statistically
robust signal behind the deadlock rates (deadlocks ~ waits^2) — drop from
cubic to quadratic exactly as substituting DB := DB x N into equation 10
predicts.
"""

import pytest

from repro.analytic import ModelParameters, eager
from repro.analytic.scaling import amplification, fit_exponent, sweep
from repro.harness import ExperimentConfig, run_experiment
from repro.metrics.report import format_table

ANALYTIC = ModelParameters(db_size=10_000, nodes=1, tps=10, actions=5,
                           action_time=0.01)
REGIME = ModelParameters(db_size=40, nodes=1, tps=6, actions=3,
                         action_time=0.01)
NODES = [2, 3, 4, 6]
SEEDS = 3
DURATION = 200.0


def run_pair():
    out = {}
    for label, scale_db in [("fixed", False), ("scaled", True)]:
        deadlock_rates, wait_rates = [], []
        for nodes in NODES:
            db = REGIME.db_size * (nodes if scale_db else 1)
            deadlocks = waits = 0
            for seed in range(SEEDS):
                params = REGIME.with_(nodes=nodes, db_size=db)
                result = run_experiment(
                    ExperimentConfig(strategy="eager-group", params=params,
                                     duration=DURATION, seed=seed)
                )
                deadlocks += result.metrics.deadlocks
                waits += result.metrics.waits
            deadlock_rates.append(deadlocks / (SEEDS * DURATION))
            wait_rates.append(waits / (SEEDS * DURATION))
        out[label] = (deadlock_rates, wait_rates)
    return out


def test_bench_eq13(benchmark):
    measured = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    fixed_deadlocks, fixed_waits = measured["fixed"]
    scaled_deadlocks, scaled_waits = measured["scaled"]

    # analytic: exactly linear, ten-fold at ten nodes
    r = sweep(eager.total_deadlock_rate_scaled_db, ANALYTIC, "nodes",
              [1, 2, 5, 10, 50])
    assert fit_exponent(r.xs, r.ys) == pytest.approx(1.0)
    assert amplification(
        eager.total_deadlock_rate_scaled_db, ANALYTIC, "nodes", 10
    ) == pytest.approx(10.0)

    print()
    print(format_table(
        ["nodes", "fixed-DB deadlocks/s", "scaled-DB deadlocks/s",
         "fixed-DB waits/s", "scaled-DB waits/s"],
        list(zip(NODES, fixed_deadlocks, scaled_deadlocks, fixed_waits,
                 scaled_waits)),
        title=(
            "Equation 13: growing DB_Size with Nodes tames the explosion "
            f"(mean of {SEEDS} seeds)"
        ),
    ))

    fixed_wait_exp = fit_exponent(NODES, fixed_waits)
    scaled_wait_exp = fit_exponent(NODES, scaled_waits)
    fixed_growth = fixed_deadlocks[-1] / fixed_deadlocks[0]
    scaled_growth = scaled_deadlocks[-1] / scaled_deadlocks[0]
    print(f"wait exponents: fixed {fixed_wait_exp:.2f} (model 3.0), "
          f"scaled {scaled_wait_exp:.2f} (model 2.0)")
    print(f"deadlock growth {NODES[0]}->{NODES[-1]} nodes: "
          f"fixed {fixed_growth:.1f}x, scaled {scaled_growth:.1f}x")

    # the robust wait-rate exponents drop from cubic to quadratic
    assert fixed_wait_exp == pytest.approx(3.0, abs=0.5)
    assert scaled_wait_exp == pytest.approx(2.0, abs=0.5)
    # deadlock growth is dramatically flatter with the scaled database
    assert scaled_growth < fixed_growth / 3
    for f, s in zip(fixed_deadlocks, scaled_deadlocks):
        assert s <= f
