"""Ablation — message propagation delay (ignored by the analytic model).

"If message delays were added to the model, then each transaction would last
much longer, would hold resources much longer, and so would be more likely
to collide with other transactions."  (section 3)

"As with eager replication, if message propagation times were added, the
reconciliation rate would rise."  (section 4)

Measured: the same lazy-group workload with increasing ``Message_Delay`` —
the reconciliation rate rises monotonically with the delay window; and the
same lazy-master workload with an RPC delay — transactions last longer and
wait more.
"""

import pytest

from repro.analytic import ModelParameters
from repro.harness import ExperimentConfig, run_experiment
from repro.metrics.report import format_table

DELAYS = [0.0, 0.05, 0.2, 0.5]
PARAMS = ModelParameters(db_size=80, nodes=4, tps=4, actions=3,
                         action_time=0.01)
DURATION = 150.0


def simulate():
    lazy_rows = []
    for delay in DELAYS:
        result = run_experiment(
            ExperimentConfig(strategy="lazy-group",
                             params=PARAMS.with_(message_delay=delay),
                             duration=DURATION, seed=1)
        )
        lazy_rows.append((delay, result.rates.reconciliation_rate))

    master_rows = []
    for delay in [0.0, 0.05, 0.2]:
        result = run_experiment(
            ExperimentConfig(strategy="lazy-master",
                             params=PARAMS.with_(message_delay=delay),
                             duration=DURATION, seed=1)
        )
        master_rows.append((delay, result.rates.wait_rate,
                            result.metrics.commits))
    return lazy_rows, master_rows


def test_bench_message_delay(benchmark):
    lazy_rows, master_rows = benchmark.pedantic(simulate, rounds=1,
                                                iterations=1)
    print()
    print(format_table(
        ["message delay (s)", "lazy-group reconciliations/s"],
        lazy_rows,
        title="Message delay ablation: lazy-group reconciliation",
    ))
    print(format_table(
        ["RPC delay (s)", "lazy-master waits/s", "commits"],
        master_rows,
        title="Message delay ablation: lazy-master (RPC to owners)",
    ))

    # reconciliation rate rises monotonically with the delay window
    rates = [rate for _, rate in lazy_rows]
    assert all(later >= earlier for earlier, later in zip(rates, rates[1:]))
    assert rates[-1] > 3 * max(rates[0], 1e-9)

    # lazy-master transactions hold locks across the RPC and wait more
    waits = [w for _, w, _ in master_rows]
    assert waits[-1] > waits[0]
