"""Schedule verification — the paper's correctness claims, checked.

"Eager replication gives serializable execution — there are no concurrency
anomalies" (section 1), while update-anywhere lazy replication admits
non-serializable behaviour that surfaces as reconciliation.

Every strategy runs the same contended read-modify-write workload with
history recording on; the conflict-graph verifier then certifies (or
refutes) one-copy serializability of the schedule each strategy actually
executed.
"""

import pytest

from repro.core import TwoTierSystem
from repro.metrics.report import format_table
from repro.replication.eager_group import EagerGroupSystem
from repro.replication.eager_master import EagerMasterSystem
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.lazy_master import LazyMasterSystem
from repro.txn.ops import IncrementOp, WriteOp
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import uniform_update_profile

DB = 10
DURATION = 40.0


def run_strategy(cls, **kw):
    system = cls(num_nodes=3, db_size=DB, action_time=0.002, seed=4,
                 record_history=True, retry_deadlocks=True, **kw)
    workload = WorkloadGenerator(
        system,
        uniform_update_profile(actions=2, db_size=DB, commutative=True),
        tps=3.0,
    )
    workload.start(DURATION)
    system.run()
    graph = system.history.conflict_graph()
    return {
        "committed": len(system.history.committed_ids),
        "conflict_edges": graph.edge_count(),
        "serializable": graph.is_serializable(),
        "diverged": system.divergence(),
    }


def simulate():
    results = {
        "eager-group": run_strategy(EagerGroupSystem),
        "eager-master": run_strategy(EagerMasterSystem),
        "lazy-master": run_strategy(LazyMasterSystem),
        "lazy-group": run_strategy(LazyGroupSystem, message_delay=0.5),
    }
    return results


def test_bench_serializable_schedules(benchmark):
    results = benchmark.pedantic(simulate, rounds=1, iterations=1)
    print()
    print(format_table(
        ["strategy", "committed txns", "conflict edges",
         "one-copy serializable?", "diverged"],
        [
            (name, r["committed"], r["conflict_edges"], r["serializable"],
             r["diverged"])
            for name, r in results.items()
        ],
        title="Schedule verification on identical contended workloads",
    ))

    # the serializable strategies certify clean
    assert results["eager-group"]["serializable"]
    assert results["eager-master"]["serializable"]
    assert results["lazy-master"]["serializable"]
    # update-anywhere lazy replication produced a real anomaly
    assert not results["lazy-group"]["serializable"]
    # ... while still *converging* — convergence is not serializability,
    # which is precisely the section-6 distinction
    assert results["lazy-group"]["diverged"] == 0
