"""Measurement rigor — equation 12 with confidence intervals.

A single seeded run is a point estimate; this benchmark re-measures the
eager deadlock sweep under independent seeds and reports 95% confidence
intervals.  Two checks: the analytic-vs-measured ratio is stable across the
sweep (the dilated model's systematic factor, not noise), and the measured
growth ratio between the sweep's endpoints excludes the quadratic
alternative — i.e. the cubic conclusion survives statistical scrutiny.
"""

import pytest

from benchmarks.conftest import EAGER_REGIME
from repro.analytic import eager
from repro.harness import ExperimentConfig
from repro.harness.stats import estimate, repeat_experiment
from repro.metrics.report import format_table

NODES = [2, 6]
SEEDS = [0, 1, 2, 3, 4]
DURATION = 150.0


def simulate():
    per_node = {}
    for nodes in NODES:
        stats = repeat_experiment(
            ExperimentConfig(
                strategy="eager-group",
                params=EAGER_REGIME.with_(nodes=nodes),
                duration=DURATION,
            ),
            seeds=SEEDS,
        )
        per_node[nodes] = stats["deadlock_rate"]
    return per_node


def test_bench_confidence(benchmark):
    per_node = benchmark.pedantic(simulate, rounds=1, iterations=1)

    rows = []
    for nodes, est in per_node.items():
        predicted = eager.total_deadlock_rate(EAGER_REGIME.with_(nodes=nodes))
        rows.append((nodes, predicted, est.format(), est.std))
    print()
    print(format_table(
        ["nodes", "eq 12 (paper)", "measured deadlocks/s", "std"],
        rows,
        title=f"Equation 12 with 95% CIs over {len(SEEDS)} seeds",
    ))

    low, high = per_node[NODES[0]], per_node[NODES[1]]
    # per-seed growth ratios give the distribution of the measured exponent
    ratios = [h / l for l, h in zip(low.samples, high.samples) if l > 0]
    assert len(ratios) >= 3
    growth = estimate("growth", ratios)
    n_ratio = NODES[1] / NODES[0]
    cubic, quadratic = n_ratio**3, n_ratio**2
    print(f"measured growth {NODES[0]}->{NODES[1]} nodes: {growth.format()} "
          f"(quadratic predicts {quadratic:.0f}x, cubic {cubic:.0f}x)")

    # the quadratic alternative is excluded: even the CI's low end exceeds it
    assert growth.lo > quadratic
    # and the cubic-or-worse conclusion holds at the mean
    assert growth.mean >= cubic * 0.8
    # measurement precision: CIs are informative, not degenerate
    for est in per_node.values():
        assert est.mean > 0
        assert est.ci95_half_width < est.mean  # better than ±100%
