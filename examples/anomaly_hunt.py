#!/usr/bin/env python3
"""Hunting concurrency anomalies with the schedule verifier.

The paper's claims about *which* schedules each replication strategy can
produce are checkable facts: this example records the full execution history
of a contended read-modify-write workload under each strategy and runs the
one-copy conflict-serializability verifier over it.

* Eager (group and master) and lazy-master: every recorded schedule is
  serializable — "there are no concurrency anomalies".
* Lazy-group: the verifier finds a precedence *cycle* — two replicas ordered
  the same pair of transactions in opposite directions — and prints the
  cycle as a concrete witness, even though the replicas still converged.

Run::

    python examples/anomaly_hunt.py
"""

from repro.replication.eager_group import EagerGroupSystem
from repro.replication.eager_master import EagerMasterSystem
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.lazy_master import LazyMasterSystem
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import uniform_update_profile

STRATEGIES = [
    ("eager-group", EagerGroupSystem, {}),
    ("eager-master", EagerMasterSystem, {}),
    ("lazy-master", LazyMasterSystem, {}),
    ("lazy-group", LazyGroupSystem, {"message_delay": 0.5}),
]


def hunt(name: str, cls, extra: dict) -> None:
    system = cls(num_nodes=3, db_size=8, action_time=0.002, seed=11,
                 record_history=True, retry_deadlocks=True, **extra)
    workload = WorkloadGenerator(
        system,
        uniform_update_profile(actions=2, db_size=8, commutative=True),
        tps=3.0,
    )
    workload.start(duration=30.0)
    system.run()

    history = system.history
    graph = history.conflict_graph()
    committed = len(history.committed_ids)
    print(f"{name:>13}: {committed} committed txns, "
          f"{len(history)} recorded accesses, "
          f"{graph.edge_count()} conflict edges")

    cycle = graph.find_cycle()
    if cycle is None:
        order = graph.serial_order()
        print(f"               serializable ✓  (equivalent serial order "
              f"starts {order[:5]}...)")
    else:
        print(f"               NOT serializable ✗  precedence cycle: "
              f"{' -> '.join(map(str, cycle))} -> {cycle[0]}")
        # show the raw evidence for the first edge of the cycle
        first, second = cycle[0], cycle[1] if len(cycle) > 1 else cycle[0]
        witnesses = [
            e for e in history.committed_events()
            if e.txn_id in (first, second)
        ][:8]
        for event in witnesses:
            print(f"                 node {event.node_id}: "
                  f"{event.kind}{event.txn_id}(obj {event.oid})")
    print(f"               replicas diverged: {system.divergence()} "
          f"(convergence ≠ serializability)")
    print()


if __name__ == "__main__":
    print("Recording execution histories under identical contended load...\n")
    for name, cls, extra in STRATEGIES:
        hunt(name, cls, extra)
    print("Conclusion (paper §1): eager and master schemes serialize; ")
    print("update-anywhere lazy replication converges to a state that no")
    print("serial execution could have produced — the anomaly the paper's")
    print("reconciliation machinery exists to contain.")
