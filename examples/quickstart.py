#!/usr/bin/env python3
"""Quickstart: the paper in five minutes.

1. The analytic model: why update-anywhere replication is unstable
   (equation 12's cubic deadlock growth).
2. A simulated demonstration on real lock managers.
3. The fix: two-tier replication with commutative transactions.

Run::

    python examples/quickstart.py
"""

from repro import (
    AlwaysAccept,
    EagerGroupSystem,
    IncrementOp,
    ModelParameters,
    NonNegativeOutputs,
    SystemSpec,
    TwoTierSystem,
    eager,
)
from repro.metrics.report import format_series, format_table
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import uniform_update_profile


def the_danger_analytically() -> None:
    """Equation 12: deadlocks rise as the cube of the node count."""
    print("=" * 72)
    print("1. THE DANGER (analytic): eager deadlock rate vs nodes")
    print("=" * 72)
    params = ModelParameters(db_size=10_000, nodes=1, tps=10, actions=5,
                             action_time=0.01)
    nodes = [1, 2, 5, 10, 20]
    rates = [eager.total_deadlock_rate(params.with_(nodes=n)) for n in nodes]
    print(format_series(nodes, rates, x_label="nodes",
                        y_label="deadlocks/second (eq 12)"))
    print(f"\n  1 node -> 10 nodes amplification: "
          f"{rates[3] / rates[0]:.0f}x  (the paper's 'thousand fold')\n")


def the_danger_simulated() -> None:
    """The same blow-up on a real simulated cluster with real 2PL locks."""
    print("=" * 72)
    print("2. THE DANGER (simulated): eager replication under load")
    print("=" * 72)
    rows = []
    for nodes in [2, 4, 6]:
        system = EagerGroupSystem(
            SystemSpec(num_nodes=nodes, db_size=80, action_time=0.01, seed=1),
        )
        workload = WorkloadGenerator(
            system, uniform_update_profile(actions=3, db_size=80), tps=4.0
        )
        workload.start(duration=100.0)
        system.run()
        rows.append((nodes, system.metrics.commits, system.metrics.waits,
                     system.metrics.deadlocks))
    print(format_table(
        ["nodes", "commits", "waits", "deadlocks"],
        rows,
        title="same per-node load, more nodes:",
    ))
    print()


def the_solution() -> None:
    """Two-tier replication: the joint checking account, fixed."""
    print("=" * 72)
    print("3. THE SOLUTION: two-tier replication (the checkbook, fixed)")
    print("=" * 72)
    system = TwoTierSystem(
        SystemSpec(num_nodes=3, db_size=1, action_time=0.001,
                   initial_value=1000),
        num_base=1,
    )
    you, spouse = system.mobile(1), system.mobile(2)

    # both of you go offline and write big checks against the same $1000
    system.disconnect_mobile(1)
    system.disconnect_mobile(2)
    you.submit_tentative([IncrementOp(0, -800)], NonNegativeOutputs(),
                         label="your check: $800")
    spouse.submit_tentative([IncrementOp(0, -700)], NonNegativeOutputs(),
                            label="spouse's check: $700")
    system.run()
    print(f"  your checkbook shows:    ${you.read(0)}")
    print(f"  spouse's checkbook shows: ${spouse.read(0)}")
    print(f"  the bank still shows:    ${system.nodes[0].store.value(0)}")

    # reconnect: the bank re-executes both checks as base transactions
    system.reconnect_mobile(1)
    system.run()
    system.reconnect_mobile(2)
    system.run()

    print(f"\n  after clearing, the bank shows: "
          f"${system.nodes[0].store.value(0)}")
    for mobile, who in [(you, "you"), (spouse, "your spouse")]:
        for t in mobile.rejected_transactions:
            print(f"  BOUNCED ({who}): {t.label} -- {t.diagnostic}")
    print(f"  master database diverged objects: {system.base_divergence()} "
          "(two-tier never suffers system delusion)")
    print()


def commutative_bonus() -> None:
    """Commuting transactions: zero rejections, by design."""
    print("=" * 72)
    print("4. SEMANTIC TRICKS: commutative transactions never reconcile")
    print("=" * 72)
    system = TwoTierSystem(
        SystemSpec(num_nodes=4, db_size=5, action_time=0.001, initial_value=0),
        num_base=1,
    )
    for mid in system.mobiles:
        system.disconnect_mobile(mid)
    for mid, mobile in system.mobiles.items():
        for i in range(4):
            mobile.submit_tentative([IncrementOp(i % 5, 1)], AlwaysAccept())
    system.run()
    for mid in system.mobiles:
        system.reconnect_mobile(mid)
    system.run()
    print(f"  tentative transactions: {system.metrics.tentative_committed}")
    print(f"  accepted at base:       {system.metrics.tentative_accepted}")
    print(f"  rejected:               {system.metrics.tentative_rejected}")
    print(f"  replicas diverged:      {system.divergence()}")
    print()


if __name__ == "__main__":
    the_danger_analytically()
    the_danger_simulated()
    the_solution()
    commutative_bonus()
    print("Done. See examples/ for deeper scenarios and benchmarks/ for the")
    print("full table-and-figure reproduction.")
