#!/usr/bin/env python3
"""The full "dangers of replication" scalability report.

Prints every danger curve of the paper from the analytic model, side by side
with simulated measurements, and locates the scale at which each design
leaves the model's validity region (PW no longer << 1) — the point where a
"prototype that demonstrates well" stops working.

Run::

    python examples/scalability_report.py          # analytic only (instant)
    python examples/scalability_report.py --sim    # plus simulation (~1 min)
"""

import sys

from repro import ModelParameters, eager, lazy_group, lazy_master, two_tier
from repro.analytic import refinements
from repro.analytic.scaling import fit_exponent, sweep
from repro.harness import ExperimentConfig, run_experiment
from repro.metrics.report import format_series, format_table

PARAMS = ModelParameters(db_size=10_000, nodes=1, tps=10, actions=5,
                         action_time=0.01)
NODES = [1, 2, 5, 10, 20, 50]


def curve(fn, label, params=PARAMS, values=NODES):
    result = sweep(fn, params, "nodes", values)
    exponent = fit_exponent(result.xs, result.ys)
    print(format_series(result.xs, result.ys, x_label="nodes", y_label=label))
    print(f"  growth order: N^{exponent:.1f}\n")
    return result


def analytic_report() -> None:
    print("=" * 72)
    print(f"ANALYTIC DANGER CURVES  ({PARAMS.describe()})")
    print("=" * 72)
    curve(eager.total_deadlock_rate, "eager deadlocks/s (eq 12)")
    curve(lazy_group.reconciliation_rate,
          "lazy-group reconciliations/s (eq 14)")
    curve(lazy_master.deadlock_rate, "lazy-master deadlocks/s (eq 19)")
    curve(eager.total_deadlock_rate_scaled_db,
          "eager deadlocks/s, DB scaled with N (eq 13)")

    mobile = PARAMS.with_(tps=1, disconnect_time=3600.0)  # hourly sync
    curve(lazy_group.mobile_reconciliation_rate,
          "mobile reconciliations/s (eq 18, hourly sync)", params=mobile,
          values=[2, 4, 8, 16, 32])

    print("TWO-TIER under the same mobile load:")
    rows = []
    for nodes in [2, 4, 8, 16, 32]:
        p = mobile.with_(nodes=nodes)
        rows.append((
            nodes,
            two_tier.base_deadlock_rate(p),
            two_tier.reconciliation_rate(p, non_commuting_fraction=0.0),
            two_tier.reconciliation_rate(p, non_commuting_fraction=0.25),
        ))
    print(format_table(
        ["nodes", "base deadlocks/s (eq 19)", "rejects/s (all commute)",
         "rejects/s (25% non-commuting)"],
        rows,
    ))
    print()


def validity_report() -> None:
    print("=" * 72)
    print("WHERE THE PROTOTYPE STOPS SCALING (model validity region)")
    print("=" * 72)
    rows = []
    for nodes in NODES:
        p = PARAMS.with_(nodes=nodes)
        pw = refinements.exact_eager_wait_probability(p)
        rows.append((nodes, pw, "ok" if pw < 0.1 else "UNSTABLE"))
    print(format_table(
        ["nodes", "exact eager wait probability", "regime"],
        rows,
        title="'Simple replication works well at low loads and with a few "
              "nodes. This creates a scaleup pitfall.'",
    ))
    print()


def simulated_report() -> None:
    print("=" * 72)
    print("SIMULATED CONFIRMATION (calibrated high-contention regime)")
    print("=" * 72)
    regime = ModelParameters(db_size=80, nodes=1, tps=4, actions=3,
                             action_time=0.01)
    rows = []
    for nodes in [2, 3, 4, 6]:
        p = regime.with_(nodes=nodes)
        eager_result = run_experiment(ExperimentConfig(
            strategy="eager-group", params=p, duration=150.0, seed=1))
        master_result = run_experiment(ExperimentConfig(
            strategy="lazy-master", params=p, duration=150.0, seed=1))
        lazy_result = run_experiment(ExperimentConfig(
            strategy="lazy-group",
            params=p.with_(message_delay=0.05), duration=150.0, seed=1))
        rows.append((
            nodes,
            eager_result.rates.deadlock_rate,
            master_result.rates.deadlock_rate,
            lazy_result.rates.reconciliation_rate,
        ))
    print(format_table(
        ["nodes", "eager deadlocks/s", "lazy-master deadlocks/s",
         "lazy-group reconciliations/s"],
        rows,
        title="measured on the simulator:",
    ))
    xs = [r[0] for r in rows]
    print(f"\n  eager growth order:       "
          f"N^{fit_exponent(xs, [r[1] for r in rows]):.1f} (model: 3)")
    print(f"  lazy-group growth order:  "
          f"N^{fit_exponent(xs, [r[3] for r in rows]):.1f} (model: 3)")
    print()


if __name__ == "__main__":
    analytic_report()
    validity_report()
    if "--sim" in sys.argv:
        simulated_report()
    else:
        print("(pass --sim to add the simulated confirmation, ~1 minute)")
