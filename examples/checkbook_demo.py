#!/usr/bin/env python3
"""The joint checking account, three ways (paper sections 1 and 6-7).

The same story — a $1,000 account, two spouses spending concurrently while
offline — played against three replication designs:

1. **Lazy group with timestamp reconciliation** (Lotus Notes style): both
   debits commit locally; on exchange the newer timestamp wins and one
   debit silently vanishes — the lost-update problem.
2. **Lazy group with commutative propagation**: both debits merge, and the
   account goes $1,000 overdrawn — convergent but unconstrained.
3. **Two-tier**: the bank masters the account; checks are tentative and the
   bank bounces the one that would overdraw — convergent *and* constrained.

Run::

    python examples/checkbook_demo.py
"""

from repro import IncrementOp, SystemSpec
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.reconciliation import MergeCommutative
from repro.workload.checkbook import CheckbookScenario

BALANCE = 1000.0
YOUR_CHECK = 800.0
SPOUSE_CHECK = 700.0


def banner(title: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)


def lazy_group_timestamps() -> None:
    banner("1. LAZY GROUP, timestamp reconciliation (the lost update)")
    # three replicas: your checkbook (0), spouse's checkbook (1), bank (2)
    system = LazyGroupSystem(
        SystemSpec(num_nodes=3, db_size=1, action_time=0.001,
                   message_delay=5.0, initial_value=BALANCE),
    )
    system.submit(0, [IncrementOp(0, -YOUR_CHECK)])
    system.submit(1, [IncrementOp(0, -SPOUSE_CHECK)])
    system.run()
    final = system.nodes[2].store.value(0)
    print(f"  you debited ${YOUR_CHECK:.0f}, spouse debited "
          f"${SPOUSE_CHECK:.0f} from ${BALANCE:.0f}")
    print(f"  reconciliations flagged: {system.metrics.reconciliations}")
    print(f"  bank's converged balance: ${final:.0f}")
    lost = BALANCE - YOUR_CHECK - SPOUSE_CHECK
    print(f"  correct balance would be ${lost:.0f} -> one check's effect "
          "was LOST (newer timestamp won)")
    print()


def lazy_group_commutative() -> None:
    banner("2. LAZY GROUP, commutative merge (convergent but overdrawn)")
    system = LazyGroupSystem(
        SystemSpec(num_nodes=3, db_size=1, action_time=0.001,
                   message_delay=5.0, initial_value=BALANCE),
        rule=MergeCommutative(),
        propagate_ops=True,
    )
    system.submit(0, [IncrementOp(0, -YOUR_CHECK)])
    system.submit(1, [IncrementOp(0, -SPOUSE_CHECK)])
    system.run()
    final = system.nodes[2].store.value(0)
    print(f"  both debits merged everywhere: balance ${final:.0f}")
    print("  nothing was lost -- but nothing stopped the overdraft either:")
    print(f"  the couple spent ${YOUR_CHECK + SPOUSE_CHECK:.0f} of "
          f"${BALANCE:.0f} ('the virtual $1,000')")
    print()


def two_tier() -> None:
    banner("3. TWO-TIER: the bank masters the account")
    scenario = CheckbookScenario(accounts=1, holders=2,
                                 initial_balance=BALANCE)
    scenario.disconnect_all()
    scenario.write_check(0, 0, YOUR_CHECK)
    scenario.write_check(1, 0, SPOUSE_CHECK)
    scenario.system.run()
    print("  while disconnected:")
    print(f"    your checkbook:     ${scenario.book_balance(0, 0):.0f}")
    print(f"    spouse's checkbook: ${scenario.book_balance(1, 0):.0f}")
    print(f"    bank's ledger:      ${scenario.bank_balance(0):.0f}")
    scenario.clear_checks()
    print("  after both checkbooks sync with the bank:")
    print(f"    bank's ledger:      ${scenario.bank_balance(0):.0f}")
    for holder, messages in scenario.bounced_checks().items():
        for message in messages:
            print(f"    BOUNCED (holder {holder}): {message}")
    print(f"    both checkbooks now read "
          f"${scenario.book_balance(0, 0):.0f} -- consistent with the bank")
    print(f"    master divergence: {scenario.system.base_divergence()} "
          "(no system delusion)")
    print()


if __name__ == "__main__":
    lazy_group_timestamps()
    lazy_group_commutative()
    two_tier()
    print("Moral (paper section 8): timestamps lose updates, merging ignores")
    print("constraints; mastering the object and re-executing tentative")
    print("transactions with acceptance criteria gives convergence AND")
    print("constraint enforcement.")
