#!/usr/bin/env python3
"""A TPC-B-style bank across replication strategies.

The paper reaches for the TPC benchmarks when arguing that real systems
scale their data with their load (the equation-13 regime).  This example
runs the classic TPC-B deposit transaction — account + teller + branch +
history — on a replicated bank and checks the benchmark's consistency
condition (every branch balance equals the sum of its tellers' balances)
under three designs:

1. lazy-master (the sane connected design);
2. lazy-group with timestamp reconciliation (watch the invariant break:
   lost updates desynchronize branches from their tellers);
3. lazy-group with commutative merge (invariant restored — §6's third form).

Run::

    python examples/tpcb_bank.py
"""

from repro import SystemSpec
from repro.replication.lazy_group import LazyGroupSystem
from repro.replication.lazy_master import LazyMasterSystem
from repro.replication.reconciliation import MergeCommutative
from repro.workload.generator import WorkloadGenerator
from repro.workload.tpcb import TpcbLayout, TpcbProfile, branch_balance_invariant

BRANCHES = 3
TPS = 4.0
DAY = 60.0


def run(name, factory):
    layout = TpcbLayout(branches=BRANCHES)
    system = factory(layout)
    profile = TpcbProfile(layout, remote_fraction=0.15)
    workload = WorkloadGenerator(system, profile, tps=TPS)
    workload.start(DAY)
    system.run()

    converged = system.converged()
    invariant = branch_balance_invariant(system.nodes[0].store, layout)
    store = system.nodes[0].store
    print(f"{name}:")
    print(f"  deposits committed: {system.metrics.commits}")
    print(f"  reconciliations:    {system.metrics.reconciliations}")
    print(f"  replicas converged: {converged}")
    print(f"  branch == sum(tellers) at every branch: {invariant}")
    history = store.value(layout.history_oid(0))
    entries = len(history) if isinstance(history, tuple) else 0
    print(f"  branch 0 history entries: {entries}")
    print()
    return invariant


def main() -> None:
    print(f"TPC-B bank: {BRANCHES} branches, {TPS:.0f} deposits/s/node, "
          f"{DAY:.0f}s of trading\n")

    ok_master = run(
        "1. lazy-master",
        lambda layout: LazyMasterSystem(
            SystemSpec(num_nodes=BRANCHES, db_size=layout.db_size,
                       action_time=0.001, seed=1, retry_deadlocks=True),
        ),
    )
    ok_timestamp = run(
        "2. lazy-group, timestamp reconciliation",
        lambda layout: LazyGroupSystem(
            SystemSpec(num_nodes=BRANCHES, db_size=layout.db_size,
                       action_time=0.001, message_delay=0.5, seed=1),
        ),
    )
    ok_merge = run(
        "3. lazy-group, commutative merge",
        lambda layout: LazyGroupSystem(
            SystemSpec(num_nodes=BRANCHES, db_size=layout.db_size,
                       action_time=0.001, message_delay=0.5, seed=1),
            rule=MergeCommutative(),
            propagate_ops=True,
        ),
    )

    print("Summary: master serialization and commutative merging both keep")
    print("the books; shipping timestamped values does not — 'the timestamp")
    print("scheme may lose the effects of some transactions.'")
    assert ok_master
    assert ok_merge
    if not ok_timestamp:
        print("(and indeed, design 2 broke the branch/teller invariant)")


if __name__ == "__main__":
    main()
