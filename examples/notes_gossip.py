#!/usr/bin/env python3
"""A Lotus-Notes-style shared notebook on convergent replication (§6).

"Lotus Notes gives a good example of convergence... Notes provides
convergence rather than an ACID transaction execution model. The database
state may not reflect any particular serial execution, but all the states
will be identical."

Three editors keep replicas of a shared notebook and gossip periodically.
The example shows all three section-6 update forms side by side:

* **appends** (discussion comments) — everyone's comments survive;
* **timestamped replaces** (the document title) — converges, but concurrent
  renames lose one side's edit, reported Access-style;
* **commutative increments** (a vote counter) — every vote counts.

Run::

    python examples/notes_gossip.py
"""

from repro.replication.convergent import ConvergentReplica
from repro.replication.gossip import GossipDriver
from repro.sim import Engine

TITLE, COMMENTS, VOTES = 0, 1, 2
EDITORS = ["alice", "bob", "carol"]


def main() -> None:
    engine = Engine()
    replicas = [ConvergentReplica(i, db_size=3) for i in range(len(EDITORS))]
    gossip = GossipDriver(engine, replicas, period=5.0, random_partners=True,
                          seed=1)
    gossip.start(duration=120.0)

    def editing_session(editor_index: int):
        replica = replicas[editor_index]
        name = EDITORS[editor_index]
        yield engine.timeout(1.0 + editor_index)
        replica.append(COMMENTS, f"{name}: first impressions look good")
        replica.increment(VOTES, 1)
        yield engine.timeout(2.0)
        # everyone renames the document at nearly the same time
        replica.replace(TITLE, f"Design doc (edited by {name})")
        yield engine.timeout(3.0)
        replica.append(COMMENTS, f"{name}: replied to the thread")
        replica.increment(VOTES, 1)

    for index in range(len(EDITORS)):
        engine.process(editing_session(index))
    engine.run()

    print("After the editing session and gossip convergence:\n")
    reference = replicas[0]
    print(f"  converged: {gossip.converged()} "
          f"(exchanges performed: {gossip.exchanges})")
    print(f"\n  TITLE (timestamped replace): {reference.value(TITLE)!r}")
    lost = sum(r.lost_updates for r in replicas)
    print(f"    concurrent renames lost: {lost} "
          "(the lost-update problem — reported, per Microsoft Access):")
    for replica, editor in zip(replicas, EDITORS):
        for oid, mine, theirs in replica.conflicts_reported:
            print(f"      {editor}'s edit at {mine} was overwritten by {theirs}")

    print(f"\n  COMMENTS (timestamped append) — nothing lost:")
    for note in reference.notes(COMMENTS):
        print(f"      [{note.ts}] {note.body}")

    print(f"\n  VOTES (commutative increment): {reference.value(VOTES)} "
          f"of {2 * len(EDITORS)} cast — all counted")

    assert gossip.converged()
    assert len(reference.notes(COMMENTS)) == 2 * len(EDITORS)
    assert reference.value(VOTES) == 2 * len(EDITORS)


if __name__ == "__main__":
    main()
