#!/usr/bin/env python3
"""A travelling sales campaign on two-tier replication (paper section 7).

Three salesmen leave the home office with replicated catalogs, spend the day
disconnected quoting prices, reserving stock, and booking seats, while the
home office changes prices and stock under them.  In the evening they sync:
the paper's three sample acceptance criteria decide what sticks —

* "The price quote can not exceed the tentative quote."
* "The bank balance must not go negative."  (here: stock must not go
  negative)
* "The seats must be aisle seats."

Run::

    python examples/sales_campaign.py
"""

from repro.workload.sales import SalesScenario


def main() -> None:
    scenario = SalesScenario(items=4, seats=6, salesmen=3,
                             initial_price=100.0, initial_stock=10, seed=7)
    system = scenario.system

    print("=" * 72)
    print("MORNING: three salesmen leave with today's catalog")
    print("=" * 72)
    print(f"  item 0: ${scenario.initial_price:.0f}, "
          f"{scenario.initial_stock} in stock")
    scenario.send_salesmen_out()

    print("\nON THE ROAD (disconnected): quotes, orders, seat bookings")
    scenario.quote_and_order(0, item=0, quantity=6)
    print("  salesman 0 sells 6 of item 0 at the $100 quote")
    scenario.quote_and_order(1, item=0, quantity=6)
    print("  salesman 1 ALSO sells 6 of item 0 at the $100 quote")
    scenario.quote_and_order(2, item=1, quantity=3)
    print("  salesman 2 sells 3 of item 1")
    scenario.book_seat(0, seat=0, row=12, letter="C")
    print("  salesman 0 books seat 12C (aisle) for a customer")
    scenario.book_seat(1, seat=1, row=14, letter="A")
    print("  salesman 1 books seat 14A (window!) for a customer")
    system.run()

    print("\nMEANWHILE AT HEAD OFFICE: item 1 is repriced to $140")
    scenario.reprice_at_base(1, 140.0)
    system.run()

    print("\nEVENING: the salesmen return and sync")
    scenario.salesmen_return()

    print("\nRESULTS")
    print("-" * 72)
    for salesman in range(3):
        rejections = scenario.rejections(salesman)
        mobile = system.mobile(scenario.salesman_node(salesman))
        accepted = len(mobile.accepted_transactions)
        print(f"  salesman {salesman}: {accepted} accepted, "
              f"{len(rejections)} rejected")
        for label, diagnostic in rejections:
            print(f"    REJECTED {label}: {diagnostic}")

    print("\nFINAL MASTER STATE AT HEAD OFFICE")
    print("-" * 72)
    print(f"  item 0 stock: {scenario.stock_at_base(0):.0f} "
          f"(orders honored: {scenario.orders_at_base(0):.0f} of 12 tried)")
    print(f"  item 1 stock: {scenario.stock_at_base(1):.0f} "
          f"(orders honored: {scenario.orders_at_base(1):.0f})")
    seat0 = system.nodes[0].store.value(scenario.seat_oid(0))
    seat1 = system.nodes[0].store.value(scenario.seat_oid(1))
    print(f"  seat 0: {seat0!r}")
    print(f"  seat 1: {seat1!r}  (0 means the booking was refused)")
    print(f"  master divergence: {system.base_divergence()}")
    print(f"  metrics: {system.metrics}")


if __name__ == "__main__":
    main()
